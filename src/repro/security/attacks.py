"""Executable attacks against the three WfMS architectures.

Each function mounts one concrete attack and reports an
:class:`~repro.security.threat.AttackOutcome`; :class:`AttackSuite`
runs the whole matrix.  These are the paper's §1 security arguments as
tests: engine-based WfMSs *fail* the superuser/tampering/repudiation
scenarios, DRA4WfMS detects or rebuts every one of them.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from ..baselines.centralized import CentralizedWfms
from ..baselines.distributed import DistributedWfms
from ..crypto.backend import CryptoBackend, default_backend
from ..crypto.pki import KeyDirectory
from ..document.cer import CER
from ..document.document import Dra4wfmsDocument
from ..document.nonrepudiation import nonrepudiation_scope
from ..document.sections import KIND_STANDARD, KIND_TFC
from ..document.verify import verify_document
from ..errors import (
    ReplayDetected,
    ReproError,
    TamperDetected,
    VerificationError,
    XmlEncryptionError,
)
from ..xmlsec.xmldsig import find_by_id
from .threat import AttackOutcome

__all__ = [
    "tamper_dra_field",
    "swap_dra_ciphertexts",
    "rollback_dra_document",
    "eavesdrop_dra_field",
    "repudiate_dra_execution",
    "superuser_tamper_centralized",
    "repudiate_centralized",
    "mitm_distributed",
    "eavesdrop_distributed",
    "AttackSuite",
]


def _reverify(document: Dra4wfmsDocument, directory: KeyDirectory,
              backend: CryptoBackend) -> tuple[bool, str]:
    """Run full verification; return (detected, detail)."""
    try:
        verify_document(document, directory, backend)
        return False, "verification passed (alteration NOT detected)"
    except (TamperDetected, VerificationError, ReproError) as exc:
        return True, f"detected: {type(exc).__name__}: {exc}"


def _mutable_copy(document: Dra4wfmsDocument) -> Dra4wfmsDocument:
    return Dra4wfmsDocument(copy.deepcopy(document.root))


# ---------------------------------------------------------------------------
# Attacks on DRA4WfMS documents
# ---------------------------------------------------------------------------


def tamper_dra_field(document: Dra4wfmsDocument, directory: KeyDirectory,
                     backend: CryptoBackend | None = None) -> AttackOutcome:
    """Superuser/MITM edits a stored execution result's ciphertext."""
    backend = backend or default_backend()
    altered = _mutable_copy(document)
    target = None
    for cer in altered.cers(include_definition=False):
        if cer.kind in (KIND_STANDARD, KIND_TFC) and cer.encrypted_fields():
            target = cer.encrypted_fields()[0]
            break
    if target is None:
        raise ValueError("document has no encrypted execution result")
    cipher_value = target.element.find("CipherData/CipherValue")
    cipher_value.text = "QUJD" + (cipher_value.text or "")[4:]
    detected, detail = _reverify(altered, directory, backend)
    return AttackOutcome(
        attack="tamper-stored-result",
        system="dra4wfms",
        succeeded=not detected,
        detected=detected,
        detail=detail,
    )


def swap_dra_ciphertexts(document: Dra4wfmsDocument,
                         directory: KeyDirectory,
                         backend: CryptoBackend | None = None,
                         ) -> AttackOutcome:
    """Splicing attack: swap two encrypted fields between CERs."""
    backend = backend or default_backend()
    altered = _mutable_copy(document)
    fields = []
    for cer in altered.cers(include_definition=False):
        fields.extend(cer.encrypted_fields())
        if len(fields) >= 2:
            break
    if len(fields) < 2:
        raise ValueError("need two encrypted fields to swap")
    a = fields[0].element.find("CipherData/CipherValue")
    b = fields[1].element.find("CipherData/CipherValue")
    a.text, b.text = b.text, a.text
    detected, detail = _reverify(altered, directory, backend)
    return AttackOutcome(
        attack="splice-ciphertexts",
        system="dra4wfms",
        succeeded=not detected,
        detected=detected,
        detail=detail,
    )


def rollback_dra_document(document: Dra4wfmsDocument,
                          directory: KeyDirectory,
                          pool=None,
                          backend: CryptoBackend | None = None,
                          ) -> AttackOutcome:
    """Truncation attack: present an earlier (valid!) document state.

    Stripping the newest CERs yields a *correctly signed* prefix — the
    one alteration pure signature verification cannot catch.  The
    document pool's monotonicity guard is the defence; when a *pool* is
    supplied the attack is run against it.
    """
    backend = backend or default_backend()
    altered = _mutable_copy(document)
    results = altered.results_section
    cers = results.findall("CER")
    if len(cers) < 2:
        raise ValueError("need at least two CERs to roll back")
    # Remove the newest activity execution entirely (its CER(s)).
    last = CER(cers[-1])
    for node in cers[::-1]:
        cer = CER(node)
        if (cer.activity_id, cer.iteration) == (last.activity_id,
                                                last.iteration):
            results.remove(node)

    doc_detected, doc_detail = _reverify(altered, directory, backend)
    if pool is None:
        return AttackOutcome(
            attack="rollback-truncation",
            system="dra4wfms",
            succeeded=not doc_detected,
            detected=doc_detected,
            detail=doc_detail + " (no pool guard in path)",
        )
    try:
        pool.store(altered)
        return AttackOutcome(
            attack="rollback-truncation",
            system="dra4wfms",
            succeeded=True,
            detected=False,
            detail="pool accepted a truncated document",
        )
    except TamperDetected as exc:
        return AttackOutcome(
            attack="rollback-truncation",
            system="dra4wfms",
            succeeded=False,
            detected=True,
            detail=f"pool monotonicity guard: {exc}",
        )


def eavesdrop_dra_field(document: Dra4wfmsDocument,
                        outsider_identity: str,
                        outsider_private_key,
                        backend: CryptoBackend | None = None,
                        ) -> AttackOutcome:
    """An eavesdropper (or the cloud provider) tries to read a field."""
    backend = backend or default_backend()
    for cer in document.cers(include_definition=False):
        for enc in cer.encrypted_fields():
            if outsider_identity in enc.recipients:
                continue
            try:
                enc.decrypt(outsider_identity, outsider_private_key, backend)
                return AttackOutcome(
                    attack="eavesdrop-confidential-field",
                    system="dra4wfms",
                    succeeded=True,
                    detected=False,
                    detail=f"decrypted {enc.name!r} without authorisation",
                )
            except XmlEncryptionError as exc:
                return AttackOutcome(
                    attack="eavesdrop-confidential-field",
                    system="dra4wfms",
                    succeeded=False,
                    detected=True,
                    detail=f"rejected: {exc}",
                )
    raise ValueError("no field the outsider is excluded from")


def repudiate_dra_execution(document: Dra4wfmsDocument,
                            directory: KeyDirectory,
                            activity_id: str,
                            iteration: int = 0,
                            backend: CryptoBackend | None = None,
                            ) -> AttackOutcome:
    """A participant denies having executed an activity.

    The rebuttal is Algorithm 1: their CER's signature verifies under
    their PKI-certified key and its nonrepudiation scope pins exactly
    which document state they countersigned.
    """
    backend = backend or default_backend()
    cer = (document.find_cer(activity_id, iteration, KIND_STANDARD)
           or document.find_cer(activity_id, iteration, KIND_TFC))
    if cer is None:
        raise ValueError(f"no CER for {activity_id}^{iteration}")
    try:
        verify_document(document, directory, backend)
    except ReproError as exc:
        return AttackOutcome(
            attack="repudiate-execution",
            system="dra4wfms",
            succeeded=True,
            detected=True,
            detail=f"document invalid, denial stands: {exc}",
        )
    scope = nonrepudiation_scope(document, cer)
    return AttackOutcome(
        attack="repudiate-execution",
        system="dra4wfms",
        succeeded=False,
        detected=True,
        detail=(
            f"denial rebutted: signature of {cer.participant!r} over "
            f"{cer.cer_id!r} verifies; nonrepudiation scope covers "
            f"{len(scope)} CERs"
        ),
    )


# ---------------------------------------------------------------------------
# Attacks on the engine-based baselines
# ---------------------------------------------------------------------------


def superuser_tamper_centralized(system: CentralizedWfms, process_id: str,
                                 activity_id: str,
                                 iteration: int = 0) -> AttackOutcome:
    """The DB admin silently rewrites a stored result and the logs."""
    admin = system.superuser()
    row_id = f"{process_id}/{activity_id}/{iteration}"
    admin.silent_update(
        "activity_results", row_id,
        {"values": '{"decision": "FORGED: reject everything"}'},
    )
    admin.rewrite_log(drop_row_id=row_id)
    forged = system.stored_result(process_id, activity_id, iteration)
    detected = system.detect_tampering(process_id)
    return AttackOutcome(
        attack="tamper-stored-result",
        system="centralized-engine",
        succeeded=(forged.get("decision", "").startswith("FORGED")
                   and not detected),
        detected=detected,
        detail="superuser rewrote the row and erased the audit trail; "
               "the engine has no cryptographic evidence to notice",
    )


def repudiate_centralized(system: CentralizedWfms, process_id: str,
                          activity_id: str,
                          iteration: int = 0) -> AttackOutcome:
    """A participant denies the stored result is theirs."""
    provable = system.can_prove_result(process_id, activity_id, iteration)
    return AttackOutcome(
        attack="repudiate-execution",
        system="centralized-engine",
        succeeded=not provable,
        detected=False,
        detail="stored rows carry no signature; the engine cannot rebut "
               "the participant's denial",
    )


def mitm_distributed(system: DistributedWfms,
                     responders: dict) -> AttackOutcome:
    """Alter a migrating process instance on the public network."""
    marker = "MITM-FORGED"

    def hook(source: str, target: str, payload: dict) -> dict:
        for name in payload.get("variables", {}):
            payload["variables"][name] = marker
            break
        return payload

    system.install_transit_hook(hook)
    process_id, migrations = system.run(responders)
    forged = any(
        value == marker
        for value in system.stored_variables(process_id).values()
    )
    if system.use_ssl:
        return AttackOutcome(
            attack="alter-in-transit",
            system="distributed-engine(ssl)",
            succeeded=forged,
            detected=False,
            detail="SSL protects the channel; the hook never saw plaintext",
        )
    return AttackOutcome(
        attack="alter-in-transit",
        system="distributed-engine(plain)",
        succeeded=forged and not system.detect_tampering(process_id),
        detected=system.detect_tampering(process_id),
        detail=f"instance altered during {len(migrations)} migrations; "
               f"no engine noticed",
    )


def eavesdrop_distributed(system: DistributedWfms,
                          responders: dict) -> AttackOutcome:
    """Capture migrating instances on the public network."""
    process_id, _ = system.run(responders)
    captured = [
        c for c in system.wire_captures
        if c.get("state", {}).get("variables")
    ]
    succeeded = bool(captured) and not system.use_ssl
    return AttackOutcome(
        attack="eavesdrop-in-transit",
        system=("distributed-engine(ssl)" if system.use_ssl
                else "distributed-engine(plain)"),
        succeeded=succeeded,
        detected=False,
        detail=(f"captured {len(captured)} plaintext instance states"
                if succeeded else "nothing readable on the wire"),
    )


# ---------------------------------------------------------------------------
# The full comparison matrix
# ---------------------------------------------------------------------------


@dataclass
class AttackSuite:
    """Runs every attack against every architecture on one workload."""

    outcomes: list[AttackOutcome]

    @classmethod
    def run(cls, *, dra_document: Dra4wfmsDocument,
            directory: KeyDirectory,
            outsider_identity: str,
            outsider_private_key,
            centralized: CentralizedWfms,
            centralized_process: str,
            repudiated_activity: str,
            distributed_plain: DistributedWfms,
            distributed_ssl: DistributedWfms,
            responders: dict,
            pool=None,
            backend: CryptoBackend | None = None) -> "AttackSuite":
        """Execute the matrix and collect outcomes."""
        backend = backend or default_backend()
        outcomes = [
            tamper_dra_field(dra_document, directory, backend),
            swap_dra_ciphertexts(dra_document, directory, backend),
            rollback_dra_document(dra_document, directory, pool, backend),
            eavesdrop_dra_field(dra_document, outsider_identity,
                                outsider_private_key, backend),
            repudiate_dra_execution(dra_document, directory,
                                    repudiated_activity, backend=backend),
            superuser_tamper_centralized(centralized, centralized_process,
                                         repudiated_activity),
            repudiate_centralized(centralized, centralized_process,
                                  repudiated_activity),
            mitm_distributed(distributed_plain, responders),
            mitm_distributed(distributed_ssl, responders),
            eavesdrop_distributed(distributed_plain, responders),
            eavesdrop_distributed(distributed_ssl, responders),
        ]
        return cls(outcomes=outcomes)

    def by_system(self) -> dict[str, list[AttackOutcome]]:
        """Group outcomes per architecture."""
        grouped: dict[str, list[AttackOutcome]] = {}
        for outcome in self.outcomes:
            grouped.setdefault(outcome.system, []).append(outcome)
        return grouped

    def dra_all_secure(self) -> bool:
        """True when DRA4WfMS resisted every attack."""
        return all(
            outcome.secure for outcome in self.outcomes
            if outcome.system == "dra4wfms"
        )

    def baselines_all_vulnerable(self) -> bool:
        """True when each engine baseline failed at least one attack."""
        grouped = self.by_system()
        engine_systems = [
            system for system in grouped if system != "dra4wfms"
            and not system.endswith("(ssl)")
        ]
        return all(
            any(not outcome.secure for outcome in grouped[system])
            for system in engine_systems
        )
