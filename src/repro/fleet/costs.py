"""Deterministic service-time model for cryptographic work.

Network and storage costs are captured straight from the simulated
components (they are pure functions of byte counts), but crypto work is
normally measured in *host* time — which varies run to run and would
break the fleet's byte-identical determinism guarantee.  The fleet
therefore charges crypto through this model instead: simulated seconds
as a function of the deterministic *counts* (signatures verified,
signatures produced, bytes hashed), with coefficients calibrated to the
repository's RSA-1024 measurements (EXPERIMENTS.md, Table 1: α grows
linearly in the number of signatures, β is constant).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CryptoCostModel"]


@dataclass(frozen=True)
class CryptoCostModel:
    """Simulated crypto costs (seconds), linear in operation counts."""

    #: One RSA signature verification (cascade check).
    verify_per_signature: float = 0.0004
    #: One RSA signature creation (CER embed).
    sign_seconds: float = 0.004
    #: Symmetric work (hash/encrypt) per document byte.
    hash_per_byte: float = 2e-9

    def __post_init__(self) -> None:
        if (self.verify_per_signature < 0 or self.sign_seconds < 0
                or self.hash_per_byte < 0):
            raise ValueError("cost coefficients must be non-negative")

    def aea_execute(self, signatures_verified: int,
                    document_bytes: int) -> float:
        """AEA hop: verify the cascade, execute, encrypt + sign (α+β)."""
        if signatures_verified < 0 or document_bytes < 0:
            raise ValueError("counts must be non-negative")
        return (self.verify_per_signature * signatures_verified
                + self.sign_seconds
                + self.hash_per_byte * document_bytes)

    def tfc_process(self, signatures_verified: int,
                    document_bytes: int) -> float:
        """TFC finalisation: verify, decrypt bundle, re-encrypt, sign (γ)."""
        if signatures_verified < 0 or document_bytes < 0:
            raise ValueError("counts must be non-negative")
        return (self.verify_per_signature * signatures_verified
                + self.sign_seconds
                + self.hash_per_byte * document_bytes)

    def initial_sign(self, document_bytes: int) -> float:
        """Designer signing the initial document."""
        if document_bytes < 0:
            raise ValueError("counts must be non-negative")
        return self.sign_seconds + self.hash_per_byte * document_bytes

    def delta_overhead(self, chunk_bytes: int) -> float:
        """Delta routing bookkeeping: content-hash the moved chunks.

        Charged on the *wire* bytes of a delta transfer — the SHA-256
        pass that keys and re-checks each chunk.  Deliberately tiny
        compared to the RSA work: delta routing must not look free, but
        its cost is hashing, not signatures.
        """
        if chunk_bytes < 0:
            raise ValueError("counts must be non-negative")
        return self.hash_per_byte * chunk_bytes
