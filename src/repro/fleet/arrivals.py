"""Arrival processes for the fleet: open loop and closed loop.

Open loop (``OpenLoop``) injects instances by a Poisson process with
rate λ: interarrival gaps are drawn ``Exp(λ)`` from the fleet's seeded
PRNG, independent of system state — the regime where queues actually
build up and tail latency is meaningful.

Closed loop (``ClosedLoop``) keeps a fixed number of instances in
flight: each completion immediately submits a replacement (classic
think-time/closed-system load generation), until the configured total
has been launched.  Throughput under closed loop measures the system's
sustainable rate at a given concurrency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["OpenLoop", "ClosedLoop", "think_time"]


@dataclass(frozen=True)
class OpenLoop:
    """Poisson arrivals: *instances* total at rate λ per second."""

    instances: int
    rate_per_second: float = 5.0

    def __post_init__(self) -> None:
        if self.instances < 1:
            raise ValueError("need at least one instance")
        if self.rate_per_second <= 0:
            raise ValueError("arrival rate must be positive")

    @property
    def mode(self) -> str:
        """Workload-generation regime name."""
        return "open"

    def arrival_times(self, rng: random.Random,
                      start: float = 0.0) -> list[float]:
        """All injection times, drawn once up front (deterministic)."""
        times: list[float] = []
        t = start
        for _ in range(self.instances):
            t += rng.expovariate(self.rate_per_second)
            times.append(t)
        return times


@dataclass(frozen=True)
class ClosedLoop:
    """Fixed-concurrency fleet: re-submit on completion."""

    instances: int
    concurrency: int = 8

    def __post_init__(self) -> None:
        if self.instances < 1:
            raise ValueError("need at least one instance")
        if self.concurrency < 1:
            raise ValueError("concurrency must be at least 1")

    @property
    def mode(self) -> str:
        """Workload-generation regime name."""
        return "closed"

    def initial_batch(self) -> int:
        """Instances launched together at the start of the run."""
        return min(self.concurrency, self.instances)


def think_time(rng: random.Random, mean_seconds: float) -> float:
    """One participant think-time sample (exponential, mean as given).

    The gap between "your turn" notification and the participant's AEA
    actually picking the work up; 0 when the fleet models fully
    automated participants (``mean_seconds == 0``).
    """
    if mean_seconds < 0:
        raise ValueError("think time must be non-negative")
    if mean_seconds == 0:
        return 0.0
    return rng.expovariate(1.0 / mean_seconds)
