"""The fleet: thousands of in-flight instances over one shared cloud.

``run_process_in_cloud`` drives a single instance start to finish; the
:class:`Fleet` instead runs a *population* of instances as a
deterministic discrete-event simulation over one :class:`CloudSystem`.
Every document still does the real cryptographic work (real CERs, real
cascade signatures — the auditor hook re-verifies finished instances
cold), but *when* things happen is governed by an event heap on the
shared :class:`SimClock` and by FIFO service stations modelling the
shared components:

========  =====================================================
station   models
========  =====================================================
portal    the portal tier (workers = number of portal servers)
tfc       TFC verify/timestamp/re-encrypt/sign
pool      HBase/HDFS document reads and writes
notify    "your turn" notification fan-out
aea:<p>   participant *p*'s own execution agent (their desk)
========  =====================================================

Execution model — *eager execution, lazy completion*: when a hop event
fires, the real portal/AEA/TFC work runs immediately (so documents,
TO-DO lists and caches evolve in event order), the per-component costs
are captured from the tagged :class:`SimClock` charges plus the
deterministic :class:`CryptoCostModel`, and the hop is then threaded
through the station queues; only when its last station visit finishes
do successor hops get scheduled.  AND-joins additionally gate on the
*simulated* completion of every incoming branch, so a join never starts
before its inputs have finished in simulated time.

Determinism: same seed ⇒ identical event order ⇒ byte-identical
:class:`FleetReport`.  Process ids are derived from the seed and the
instance index (host uuids would make HBase region splits — and hence
captured costs — vary between runs).
"""

from __future__ import annotations

import heapq
import random
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Callable, ContextManager, Mapping

from ..cloud.simclock import CostCapture
from ..cloud.system import CloudClient, CloudSystem
from ..crypto.keys import KeyPair
from ..document.builder import build_initial_document
from ..document.vcache import VerificationCache
from ..document.verify import verify_document
from ..errors import FleetError, JoinNotReady
from ..model.controlflow import JoinKind
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer
from .arrivals import ClosedLoop, OpenLoop, think_time
from .costs import CryptoCostModel
from .report import FleetReport
from .stations import Station
from .workload import FleetWorkload

__all__ = ["FleetConfig", "Fleet", "build_fleet", "TFC_IDENTITY"]

#: Identity the convenience builder enrolls for the cloud's notary.
TFC_IDENTITY = "tfc@cloud.example"

#: Visit order of captured components within one operation.
_STAGE_ORDER = ("portal", "pool", "notify")


@dataclass(frozen=True)
class FleetConfig:
    """Tunable knobs of one fleet run."""

    arrivals: OpenLoop | ClosedLoop
    seed: int = 0
    #: Mean participant think time (exponential; 0 = automated).
    think_seconds: float = 0.0
    #: Parallel TFC verify/sign workers.
    tfc_workers: int = 1
    #: Parallel notification delivery workers.
    notify_workers: int = 4
    #: Workers per participant AEA desk.
    aea_workers: int = 1
    #: Cold-re-verify every Nth completed instance (0 disables).
    audit_every: int = 25
    #: Batched RSA verification knobs for audits and the cloud's
    #: TFC/portal verifies (see :func:`verify_document`).  ``None``
    #: keeps the sequential path.
    verify_workers: int | None = None
    verify_batch: bool | None = None
    costs: CryptoCostModel = field(default_factory=CryptoCostModel)
    #: Hard stop against runaway event loops.
    max_events: int = 5_000_000
    #: Optional :class:`repro.obs.Tracer` collecting per-event spans.
    #: ``None`` (default) leaves the run entirely untraced — reports
    #: stay byte-identical to pre-observability builds.
    tracer: Tracer | None = field(default=None, compare=False)
    #: Collect a :class:`repro.obs.MetricsRegistry` snapshot into the
    #: report's ``metrics`` section without retaining span events
    #: (implied when *tracer* is set).
    collect_metrics: bool = False
    #: Storage-lifecycle sweep cadence (delta routing only): every N
    #: completed instances, archive + compact + retire the finished
    #: instances and GC zero-reference chunks, so hot storage stays
    #: O(live instances).  0 (default) disables the sweep entirely —
    #: hot storage grows with total history, exactly as before.
    gc_interval: int = 0
    #: LRU byte budget for each client's peer chunk cache.  ``None``
    #: (default) keeps the historic unbounded cache.
    chunk_cache_bytes: int | None = None
    #: Callback receiving ``(process_id, ArchiveBundle)`` for every
    #: instance the lifecycle sweep retires — the bundle is exported
    #: *before* the instance leaves hot storage.  Requires
    #: ``gc_interval > 0`` to ever fire.
    archive_sink: Callable[[str, object], None] | None = field(
        default=None, compare=False)


@dataclass
class _Instance:
    """In-flight bookkeeping of one process instance."""

    index: int
    process_id: str
    arrival: float
    #: Unresolved hops + station chains; 0 ⇒ the instance is done.
    inflight: int = 0
    #: ``(activity_id, iteration)`` hops completed in *simulated* time.
    done_hops: set[tuple[str, int]] = field(default_factory=set)


class Fleet:
    """A concurrent multi-instance execution fabric over one cloud."""

    def __init__(self, system: CloudSystem, workload: FleetWorkload,
                 keypairs: Mapping[str, KeyPair],
                 config: FleetConfig) -> None:
        self.system = system
        self.workload = workload
        self.keypairs = keypairs
        self.config = config
        self.clock = system.clock
        self.rng = random.Random(config.seed)
        self.definition = workload.definition
        self.stations: dict[str, Station] = {
            "tfc": Station("tfc", config.tfc_workers),
            "pool": Station("pool", len(system.hbase.servers)),
            "notify": Station("notify", config.notify_workers),
        }
        if system.placement is None:
            # Round-robin front door: one station, a worker per portal.
            self.stations["portal"] = Station("portal",
                                              len(system.portals))
        else:
            # Ring placement pins each instance to one portal, so each
            # portal is its own single-worker station — per-portal
            # utilization, queue depth and skew become observable.
            for portal in system.portals:
                name = f"portal:{portal.portal_id}"
                self.stations[name] = Station(name, 1)
        for identity in workload.identities:
            self.stations[f"aea:{identity}"] = Station(
                f"aea:{identity}", config.aea_workers
            )
        self._events: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._instances: dict[str, _Instance] = {}
        self._started = 0
        self._completed = 0
        self._hops = 0
        self._join_retries = 0
        self._audited = 0
        self._audit_failures = 0
        self._latencies: list[float] = []
        self._first_arrival: float | None = None
        self._last_completion = 0.0
        self._clients: dict[str, CloudClient] = {}
        if config.gc_interval and not system.delta_routing:
            raise FleetError(
                "gc_interval requires delta routing (full-document "
                "mode has no chunk store to collect)"
            )
        #: Completed-but-not-yet-retired instances awaiting the sweep.
        self._retirable: list[str] = []
        self._trust_snapshot: dict[str, object] | None = None
        self._lifecycle: dict[str, int] | None = None
        if config.gc_interval:
            self._lifecycle = {
                "gc_interval": config.gc_interval,
                "sweeps": 0,
                "instances_retired": 0,
                "manifests_compacted": 0,
                "archives_exported": 0,
                "gc_chunks_deleted": 0,
                "gc_bytes_reclaimed": 0,
                "peak_hot_bytes": 0,
            }
        #: Tracing tap: the caller's collecting tracer, or a metrics-only
        #: ``collect=False`` tracer, or ``None`` (fully untraced — the
        #: default, keeping the report byte-identical to older builds).
        self.tracer = config.tracer
        self.metrics: MetricsRegistry | None = None
        self._tap: Tracer | None = None
        if config.tracer is not None:
            self._tap = config.tracer
            if config.tracer.metrics is None:
                config.tracer.metrics = MetricsRegistry()
            self.metrics = config.tracer.metrics
        elif config.collect_metrics:
            self.metrics = MetricsRegistry()
            self._tap = Tracer(collect=False, metrics=self.metrics)
        if self._tap is not None:
            system.attach_tracer(self._tap)

    def _span(self, name: str, component: str | None = None,
              instance: str | None = None,
              hop: str | None = None) -> ContextManager[object]:
        """Tracer span, or a no-op context when untraced."""
        if self._tap is None:
            return nullcontext()
        return self._tap.span(name, component=component,
                              instance=instance, hop=hop)

    def _leaf(self, name: str, seconds: float, component: str) -> None:
        """Explicit deterministic cost leaf (no-op when untraced)."""
        if self._tap is not None:
            self._tap.leaf(name, seconds, component=component)

    # -- event heap ----------------------------------------------------------

    def _push(self, when: float, fn: Callable[[], None]) -> None:
        self._sequence += 1
        heapq.heappush(self._events, (when, self._sequence, fn))

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.clock.now()

    # -- setup ---------------------------------------------------------------

    def _client(self, identity: str) -> CloudClient:
        """Logged-in portal client of one identity (session reused)."""
        client = self._clients.get(identity)
        if client is None:
            # Login cost is setup, not steady-state load: capture and
            # discard so the run starts at a clean clock.  Tracing is
            # muted for the same reason — discarded charges must not
            # appear in the trace either, or traced totals would stop
            # matching the capture sums the stations replay.
            with self.clock.trace_muted(), self.clock.capture():
                client = self.system.client(self.keypairs[identity])
            self._clients[identity] = client
        return client

    # -- station plumbing ----------------------------------------------------

    def _portal_station(self, process_id: str) -> str:
        """Name of the station serving *process_id*'s portal work."""
        if self.system.placement is None:
            return "portal"
        return f"portal:{self.system.placement.portal_for(process_id)}"

    def _captured_visits(self, capture: CostCapture,
                         portal_station: str = "portal",
                         ) -> list[tuple[Station, float]]:
        """Turn tagged charges into an ordered station-visit list."""
        by = capture.by_component()
        # Anything untagged was charged by a component without a
        # station of its own; bill it to the front door.
        extra = by.pop("misc", 0.0)
        if extra:
            by["portal"] = by.get("portal", 0.0) + extra
        visits: list[tuple[Station, float]] = []
        for name in _STAGE_ORDER:
            if by.get(name, 0.0) > 0.0:
                station = portal_station if name == "portal" else name
                visits.append((self.stations[station], by[name]))
        return visits

    def _chain(self, visits: list[tuple[Station, float]],
               on_done: Callable[[], None]) -> None:
        """Thread a job through *visits*, then fire *on_done*.

        Must be called while processing an event (the first visit
        arrives "now"); every subsequent visit is its own event so
        station arrivals stay in nondecreasing time order.
        """
        if not visits:
            on_done()
            return
        (station, cost), rest = visits[0], visits[1:]
        end = station.submit(self.now, cost)
        if self._tap is not None:
            # Zero-duration marker: the visit's cost was already traced
            # when it was charged/captured, so advancing the cursor here
            # would double-count it.
            self._tap.instant(f"station.{station.name}", component="fleet",
                              detail=f"{cost:.9f}")
        self._push(end, lambda: self._chain(rest, on_done))

    # -- instance lifecycle ---------------------------------------------------

    def _process_id(self, index: int) -> str:
        return f"fleet{self.config.seed}-{index:06d}"

    def _launch(self) -> None:
        """Inject one new instance (event handler, runs at arrival)."""
        index = self._started
        self._started += 1
        arrival = self.now
        if self._first_arrival is None:
            self._first_arrival = arrival
        designer = self.workload.designer
        initial = build_initial_document(
            self.definition,
            self.keypairs[designer],
            process_id=self._process_id(index),
            backend=self.system.backend,
            # Simulated creation time: the host wall clock's varying
            # float width would leak into document sizes and break
            # byte-identical reports.
            created_at=arrival,
        )
        instance = _Instance(index=index, process_id=initial.process_id,
                             arrival=arrival, inflight=1)
        self._instances[initial.process_id] = instance

        client = self._client(designer)
        with self._span("launch", component="fleet",
                        instance=initial.process_id,
                        hop=self.definition.start_activity):
            sign_cost = self.config.costs.initial_sign(initial.size_bytes)
            self._leaf("crypto.initial_sign", sign_cost, "crypto")
            with self.clock.capture() as captured:
                client.upload_initial(initial)
        portal_station = self._portal_station(initial.process_id)
        visits = [(self.stations[f"aea:{designer}"], sign_cost)]
        visits += self._captured_visits(captured, portal_station)
        start_activity = self.definition.start_activity
        self._chain(visits,
                    lambda: self._resolve(instance, [start_activity]))

    def _schedule_hop(self, instance: _Instance, activity_id: str) -> None:
        instance.inflight += 1
        delay = think_time(self.rng, self.config.think_seconds)
        self._push(self.now + delay,
                   lambda: self._hop(instance, activity_id))

    def _join_ready(self, instance: _Instance, activity_id: str) -> bool:
        """AND-join gate against *simulated* branch completion."""
        activity = self.definition.activity(activity_id)
        if activity.join is not JoinKind.AND:
            return True
        iteration = sum(1 for (done_id, _) in instance.done_hops
                        if done_id == activity_id)
        return all(
            (predecessor, iteration) in instance.done_hops
            for predecessor in self.definition.predecessors(activity_id)
        )

    def _hop(self, instance: _Instance, activity_id: str) -> None:
        """One activity execution attempt (event handler)."""
        with self._span("hop", component="fleet",
                        instance=instance.process_id, hop=activity_id):
            self._hop_traced(instance, activity_id)

    def _hop_traced(self, instance: _Instance, activity_id: str) -> None:
        participant = self.definition.activity(activity_id).participant
        pending = {
            (entry.process_id, entry.activity_id)
            for entry in self.system.pool.todo_for(participant)
        }
        if (instance.process_id, activity_id) not in pending:
            # A sibling attempt already executed this hop.
            self._join_retries += 1
            self._resolve(instance, [])
            return
        if not self._join_ready(instance, activity_id):
            # Some incoming branch has not *finished* in simulated
            # time; its completion will schedule a fresh attempt.
            self._join_retries += 1
            self._resolve(instance, [])
            return

        client = self._client(participant)
        portal_station = self._portal_station(instance.process_id)
        wire_before = client.bytes_received + client.bytes_sent
        with self.clock.capture() as retrieve_cost:
            document = client.retrieve_document(instance.process_id)
        # Identical to len(retrieved bytes): the parsed document
        # re-serializes to the exact bytes retrieved (round-trip
        # stability), so simulated costs are unchanged by the
        # memo-seeded retrieve path.
        retrieved_size = document.size_bytes
        responder = self.workload.responders.get(activity_id)
        if responder is None:
            raise FleetError(
                f"workload {self.workload.name!r} has no responder for "
                f"activity {activity_id!r}"
            )
        try:
            result = client.agent.execute_activity(
                document, activity_id, responder,
                mode="advanced",
                tfc_identity=self.system.tfc.identity,
                tfc_public_key=self.system.tfc.public_key,
            )
        except JoinNotReady:
            # Defensive: the simulated gate should have caught this.
            self._join_retries += 1
            self._chain(self._captured_visits(retrieve_cost,
                                              portal_station),
                        lambda: self._resolve(instance, []))
            return

        with self.clock.capture() as submit_cost:
            entries = client.submit_document(result.document)
        self._hops += 1

        costs = self.config.costs
        # Crypto costs are charged on the *full* canonical sizes in
        # both routing modes: delta routing shrinks the wire and the
        # store, never what gets hashed, verified, or signed.
        full_size = result.document.size_bytes
        aea_cost = costs.aea_execute(result.timings.signatures_verified,
                                     retrieved_size)
        if self.system.delta_routing:
            hop_wire = (client.bytes_received + client.bytes_sent
                        - wire_before)
            aea_cost += costs.delta_overhead(hop_wire)
        tfc_cost = costs.tfc_process(
            result.timings.signatures_verified + 1, full_size
        )
        self._leaf("crypto.aea_execute", aea_cost, "crypto")
        self._leaf("crypto.tfc_process", tfc_cost, "crypto")
        submit_by = submit_cost.by_component()
        visits: list[tuple[Station, float]] = []
        visits += self._captured_visits(retrieve_cost, portal_station)
        visits.append((self.stations[f"aea:{participant}"], aea_cost))
        if submit_by.get("portal") or submit_by.get("misc"):
            visits.append((
                self.stations[portal_station],
                submit_by.get("portal", 0.0) + submit_by.get("misc", 0.0),
            ))
        visits.append((self.stations["tfc"], tfc_cost))
        if submit_by.get("pool"):
            visits.append((self.stations["pool"], submit_by["pool"]))
        if submit_by.get("notify"):
            visits.append((self.stations["notify"], submit_by["notify"]))

        next_activities = [entry.activity_id for entry in entries]
        done = (activity_id, result.iteration)
        self._chain(
            visits,
            lambda: self._resolve(instance, next_activities, done),
        )

    def _resolve(self, instance: _Instance,
                 next_activities: list[str],
                 done_hop: tuple[str, int] | None = None) -> None:
        """Retire one in-flight hop; fan out successors or finish."""
        if done_hop is not None:
            instance.done_hops.add(done_hop)
        instance.inflight -= 1
        for activity_id in next_activities:
            self._schedule_hop(instance, activity_id)
        if instance.inflight == 0:
            self._complete(instance)

    def _complete(self, instance: _Instance) -> None:
        self._completed += 1
        self._last_completion = self.now
        self._latencies.append(round(self.now - instance.arrival, 9))
        every = self.config.audit_every
        if every and (self._completed - 1) % every == 0:
            self._audit(instance)
        if self._lifecycle is not None:
            self._retirable.append(instance.process_id)
            store = self.system.pool.chunks
            if store is not None:
                # Sample the hot footprint at every completion, so the
                # peak covers growth *between* sweeps too.
                self._lifecycle["peak_hot_bytes"] = max(
                    self._lifecycle["peak_hot_bytes"],
                    store.stats["unique_bytes"],
                )
            if self._completed % self.config.gc_interval == 0:
                self._lifecycle_sweep()
        arrivals = self.config.arrivals
        if (isinstance(arrivals, ClosedLoop)
                and self._started < arrivals.instances):
            self._launch()

    def _trust(self) -> dict[str, object]:
        """Verification-only trust snapshot for archive exports."""
        if self._trust_snapshot is None:
            self._trust_snapshot = self.system.directory.to_public_dict()
        return self._trust_snapshot

    def _lifecycle_sweep(self) -> None:
        """Archive + compact + retire finished instances, then GC.

        Runs as part of a completion event: the pool work's simulated
        cost is captured and billed to the pool station, so lifecycle
        maintenance competes for the same storage capacity the hot path
        uses — throughput numbers stay honest.
        """
        from ..document.archive import export_archive

        pool = self.system.pool
        life = self._lifecycle
        assert life is not None
        with self._span("lifecycle.sweep", component="pool"):
            with self.clock.capture() as captured:
                for process_id in self._retirable:
                    if self.config.archive_sink is not None:
                        bundle = export_archive(pool, process_id,
                                                self._trust())
                        self.config.archive_sink(process_id, bundle)
                        life["archives_exported"] += 1
                    pool.archive(process_id)
                    life["manifests_compacted"] += pool.compact(process_id)
                    pool.retire(process_id)
                    life["instances_retired"] += 1
                self._retirable.clear()
                deleted, reclaimed = pool.gc()
                pool.flush_hot_tables()
            life["sweeps"] += 1
            life["gc_chunks_deleted"] += deleted
            life["gc_bytes_reclaimed"] += reclaimed
            self._chain(self._captured_visits(captured), lambda: None)

    def _audit(self, instance: _Instance) -> None:
        """Cold full-cascade re-verification of a finished instance."""
        self._audited += 1
        with self._span("audit", component="crypto",
                        instance=instance.process_id):
            document = self.system.pool.latest(instance.process_id)
            try:
                verify_document(
                    document, self.system.directory, self.system.backend,
                    definition_reader=(self.system.tfc.identity,
                                       self.system.tfc.keypair.private_key),
                    workers=self.config.verify_workers,
                    batch=self.config.verify_batch,
                )
            except Exception:
                self._audit_failures += 1

    # -- main loop ------------------------------------------------------------

    def run(self) -> FleetReport:
        """Execute the configured arrival process; return the report."""
        arrivals = self.config.arrivals
        if isinstance(arrivals, OpenLoop):
            for when in arrivals.arrival_times(self.rng, start=self.now):
                self._push(when, self._launch)
        else:
            for _ in range(arrivals.initial_batch()):
                self._push(self.now, self._launch)

        processed = 0
        while self._events:
            processed += 1
            if processed > self.config.max_events:
                raise FleetError(
                    f"fleet exceeded {self.config.max_events} events "
                    f"(runaway loop?)"
                )
            when, _, fn = heapq.heappop(self._events)
            if when > self.clock.now():
                self.clock.advance_to(when)
            fn()

        return self._report(processed)

    # -- reporting ------------------------------------------------------------

    @property
    def instances(self) -> dict[str, _Instance]:
        """Per-process bookkeeping of every launched instance (read-only)."""
        return dict(self._instances)

    def queue_depths(self) -> dict[str, list[tuple[float, int]]]:
        """Per-station queue-depth time series (merged steps)."""
        return {name: station.queue_depth_series()
                for name, station in sorted(self.stations.items())}

    def utilization(self) -> dict[str, float]:
        """Per-station utilization over the run horizon so far."""
        horizon = self._last_completion if self._completed else self.now
        return {name: station.metrics(horizon).utilization
                for name, station in sorted(self.stations.items())}

    def _fill_metrics(self, horizon: float) -> None:
        """Populate the registry from the run's terminal state."""
        reg = self.metrics
        assert reg is not None
        clients = self._clients.values()
        reg.counter("wire_bytes", direction="to_cloud").inc(
            sum(c.bytes_sent for c in clients))
        reg.counter("wire_bytes", direction="from_cloud").inc(
            sum(c.bytes_received for c in clients))
        reg.counter("hops_total").inc(self._hops)
        reg.counter("instances_started_total").inc(self._started)
        reg.counter("instances_completed_total").inc(self._completed)
        reg.counter("join_retries_total").inc(self._join_retries)
        reg.counter("audits_total").inc(self._audited)
        reg.counter("audit_failures_total").inc(self._audit_failures)
        store = self.system.pool.chunks
        if store is not None:
            for key, value in sorted(store.stats.items()):
                reg.counter(f"chunk_store_{key}").inc(value)
        cache = self.system.verify_cache
        if cache is not None:
            reg.counter("verify_cache_hits_total").inc(cache.stats.hits)
            reg.counter("verify_cache_misses_total").inc(
                cache.stats.misses)
            reg.gauge("verify_cache_hit_rate").set(cache.stats.hit_rate)
        if self._lifecycle is not None:
            life = self._lifecycle
            reg.counter("lifecycle_sweeps_total").inc(life["sweeps"])
            reg.counter("instances_retired_total").inc(
                life["instances_retired"])
            reg.counter("manifests_compacted_total").inc(
                life["manifests_compacted"])
            reg.counter("gc_chunks_deleted_total").inc(
                life["gc_chunks_deleted"])
            reg.counter("gc_bytes_reclaimed_total").inc(
                life["gc_bytes_reclaimed"])
            if store is not None:
                reg.gauge("chunk_store_hot_bytes").set(
                    store.stats["unique_bytes"])
                reg.gauge("chunk_store_peak_hot_bytes").set(
                    life["peak_hot_bytes"])
        for name, station in sorted(self.stations.items()):
            m = station.metrics(horizon)
            reg.gauge("queue_depth_max", station=name).set(
                m.max_queue_depth)
            reg.gauge("utilization", station=name).set(m.utilization)
        hist = reg.histogram("latency_seconds")
        for latency in self._latencies:
            hist.observe(latency)

    def _report(self, events_processed: int) -> FleetReport:
        first = self._first_arrival or 0.0
        makespan = (round(self._last_completion - first, 9)
                    if self._completed else 0.0)
        throughput = (round(self._completed / makespan, 9)
                      if makespan > 0 else 0.0)
        horizon = self._last_completion if self._completed else self.now
        clients = self._clients.values()
        store = self.system.pool.chunks
        chunk_stats = store.stats if store is not None else {}
        placement = self.system.placement
        placement_dict: dict[str, object] = {}
        storage: dict[str, int] = {}
        if placement is not None:
            # The sharded-tier observability section: only emitted in
            # ring mode so legacy round-robin reports stay byte-stable.
            placement_dict = placement.to_dict()
            hb = self.system.hbase
            storage = {
                "region_splits": hb.stats["splits"],
                "region_moves": hb.stats["moves"],
                "memstore_flushes": hb.stats["flushes"],
                "regions": sum(len(s.regions) for s in
                               hb.servers.values()),
            }
        metrics_snapshot: dict[str, object] = {}
        if self.metrics is not None:
            self._fill_metrics(horizon)
            metrics_snapshot = self.metrics.snapshot()
        lifecycle_dict: dict[str, object] = {}
        if self._lifecycle is not None:
            lifecycle_dict = dict(self._lifecycle)
            if store is not None:
                lifecycle_dict["hot_unique_bytes"] = \
                    store.stats["unique_bytes"]
                lifecycle_dict["hot_unique_chunks"] = \
                    store.stats["unique_chunks"]
                lifecycle_dict["store"] = dict(store.lifecycle)
            lifecycle_dict["chunk_cache"] = {
                "hits": sum(c.chunks.hits for c in clients),
                "misses": sum(c.chunks.misses for c in clients),
                "evictions": sum(c.chunks.evictions for c in clients),
                "evicted_bytes": sum(c.chunks.evicted_bytes
                                     for c in clients),
                "resident_bytes": sum(c.chunks.total_bytes
                                      for c in clients),
            }
        return FleetReport(
            workload=self.workload.name,
            mode=self.config.arrivals.mode,
            seed=self.config.seed,
            routing="delta" if self.system.delta_routing else "full",
            bytes_to_cloud=sum(c.bytes_sent for c in clients),
            bytes_from_cloud=sum(c.bytes_received for c in clients),
            chunk_store=dict(sorted(chunk_stats.items())),
            instances_started=self._started,
            instances_completed=self._completed,
            hops_executed=self._hops,
            events_processed=events_processed,
            makespan_seconds=makespan,
            throughput_per_second=throughput,
            latencies=list(self._latencies),
            stations={name: station.metrics(horizon)
                      for name, station in self.stations.items()},
            instances_audited=self._audited,
            audit_failures=self._audit_failures,
            join_retries=self._join_retries,
            placement=placement_dict,
            storage=storage,
            metrics=metrics_snapshot,
            lifecycle=lifecycle_dict,
        )


def build_fleet(workload: FleetWorkload,
                config: FleetConfig,
                portals: int = 2,
                region_servers: int = 2,
                datanodes: int = 3,
                bits: int = 1024,
                backend=None,
                shared_cache: bool = True,
                delta_routing: bool = False,
                placement: str = "round-robin",
                chunk_replicas: int | None = None,
                split_threshold_rows: int = 256,
                split_threshold_bytes: int | None = None) -> Fleet:
    """Stand up a world + cloud + fleet for *workload* in one call.

    Enrolls the workload's identities plus the cloud's TFC, wires an
    (optionally) shared :class:`VerificationCache` through portals and
    TFC, and returns a ready-to-``run()`` :class:`Fleet`.  With
    ``delta_routing`` the pool stores content-addressed CER chunks and
    every client moves manifest + unseen chunks instead of full
    documents (see docs/ROUTING.md).  ``placement="ring"`` turns on the
    sharded portal tier: consistent-hash instance→portal pinning with
    per-portal stations in the report; ``chunk_replicas`` additionally
    replicates delta chunks factor-R over the region servers (see
    docs/SHARDING.md).
    """
    from ..workloads.participants import build_world

    world = build_world([*workload.identities, TFC_IDENTITY],
                        bits=bits, backend=backend)
    system = CloudSystem(
        world.directory,
        world.keypair(TFC_IDENTITY),
        portals=portals,
        region_servers=region_servers,
        datanodes=datanodes,
        backend=world.backend,
        verify_cache=VerificationCache() if shared_cache else None,
        delta_routing=delta_routing,
        verify_workers=config.verify_workers,
        verify_batch=config.verify_batch,
        placement=placement,
        chunk_replicas=chunk_replicas,
        split_threshold_rows=split_threshold_rows,
        split_threshold_bytes=split_threshold_bytes,
        chunk_cache_bytes=config.chunk_cache_bytes,
    )
    return Fleet(system, workload, world.keypairs, config)
