"""Fleet: a concurrent multi-instance execution fabric for the cloud.

Runs thousands of in-flight process instances over one shared
:class:`~repro.cloud.system.CloudSystem` as a deterministic
discrete-event simulation, with open-loop (Poisson) and closed-loop
(fixed concurrency) load generation, FIFO service stations for every
shared component, and a :class:`FleetReport` carrying throughput,
latency percentiles, utilization and queue-depth series.

See ``docs/FLEET.md`` for the event model and how to read a report.
"""

from .arrivals import ClosedLoop, OpenLoop, think_time
from .costs import CryptoCostModel
from .fleet import TFC_IDENTITY, Fleet, FleetConfig, build_fleet
from .pool_exec import InstanceResult, RealFleetConfig, run_real_fleet
from .report import FleetReport, RealFleetReport, percentile
from .stations import Station, StationMetrics
from .workload import FleetWorkload, workload_from_spec

__all__ = [
    "ClosedLoop",
    "CryptoCostModel",
    "Fleet",
    "FleetConfig",
    "FleetReport",
    "FleetWorkload",
    "InstanceResult",
    "OpenLoop",
    "RealFleetConfig",
    "RealFleetReport",
    "Station",
    "StationMetrics",
    "TFC_IDENTITY",
    "build_fleet",
    "percentile",
    "run_real_fleet",
    "think_time",
    "workload_from_spec",
]
