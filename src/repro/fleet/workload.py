"""Named workloads the fleet can run, layered on the generators.

A :class:`FleetWorkload` bundles everything one instance needs: the
definition, the responders that drive it to completion, and the
identities to enroll.  Specs are compact strings usable from the CLI::

    fig9         the paper's Figure-9 workflow (advanced model)
    chain:N      N sequential activities (workloads.generator)
    diamond:N    AND-split into N parallel branches, then a join

``chain:N:P`` / ``diamond:N:P`` cycle ``P`` participants over the
activities instead of one participant per activity — the shape where
delta routing shines, since a returning participant already holds most
of the document's chunks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..core.aea import Responder
from ..model.definition import WorkflowDefinition
from ..workloads.figure9 import (
    DESIGNER,
    figure9_responders,
    figure_9b_definition,
)
from ..workloads.generator import (
    auto_responders,
    chain_definition,
    diamond_definition,
    participant_pool,
)

__all__ = ["FleetWorkload", "workload_from_spec"]


@dataclass(frozen=True)
class FleetWorkload:
    """One runnable workload: definition + responders + identities."""

    name: str
    definition: WorkflowDefinition
    responders: Mapping[str, Responder] = field(repr=False)
    designer: str = DESIGNER

    @property
    def identities(self) -> list[str]:
        """Everyone needing a key pair: designer + all participants."""
        participants = {
            activity.participant
            for activity in self.definition.activities.values()
        }
        return [self.designer, *sorted(participants - {self.designer})]


def workload_from_spec(spec: str, loops: int = 0) -> FleetWorkload:
    """Resolve a workload spec string (see module docstring).

    *loops* applies to workloads with a loop guard: how many extra
    trips around the loop before acceptance (``fig9``'s "attachment is
    insufficient" decision).
    """
    if spec == "fig9":
        definition = figure_9b_definition()
        return FleetWorkload(name="fig9", definition=definition,
                             responders=figure9_responders(loops))
    kind, _, arg = spec.partition(":")
    arg, _, pool_arg = arg.partition(":")
    pool = None
    if pool_arg:
        if not pool_arg.isdigit() or int(pool_arg) < 1:
            raise ValueError(
                f"unknown workload spec {spec!r} (participant count "
                f"must be a positive integer)"
            )
        pool = participant_pool(int(pool_arg))
    if kind == "chain" and arg.isdigit():
        definition = chain_definition(int(arg), participants=pool)
        return FleetWorkload(
            name=spec, definition=definition,
            responders=auto_responders(definition),
            designer="designer@enterprise.example",
        )
    if kind == "diamond" and arg.isdigit():
        definition = diamond_definition(int(arg), participants=pool)
        return FleetWorkload(
            name=spec, definition=definition,
            responders=auto_responders(definition),
            designer="designer@enterprise.example",
        )
    raise ValueError(
        f"unknown workload spec {spec!r} (expected fig9, chain:N[:P] or "
        f"diamond:N[:P] — P participants cycling over the activities)"
    )
