"""Aggregated results of one fleet run.

A :class:`FleetReport` is a plain, JSON-serialisable value object: the
determinism acceptance test serialises two same-seed runs and compares
the bytes, so everything in here must derive from simulated quantities
only (never host time).  Simulated seconds are rounded to nanoseconds
before aggregation to keep float noise out of the serialised form.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .stations import StationMetrics

__all__ = ["FleetReport", "RealFleetReport", "percentile"]


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile (deterministic; 0.0 for no samples)."""
    if not (0.0 <= fraction <= 1.0):
        raise ValueError("fraction must be within [0, 1]")
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1,
                      int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class FleetReport:
    """Throughput, latency, and per-component load of one fleet run."""

    workload: str
    mode: str
    seed: int
    instances_started: int
    instances_completed: int
    hops_executed: int
    events_processed: int
    #: Simulated seconds from first arrival to last completion.
    makespan_seconds: float
    #: Completed instances per simulated second.
    throughput_per_second: float
    #: Completion latencies (arrival → final store), simulated seconds.
    latencies: list[float] = field(default_factory=list, repr=False)
    stations: dict[str, StationMetrics] = field(default_factory=dict)
    #: Completed instances whose final document was re-verified cold.
    instances_audited: int = 0
    audit_failures: int = 0
    join_retries: int = 0
    #: ``"full"`` or ``"delta"`` — how documents moved over the wire.
    routing: str = "full"
    #: Client → cloud transfer volume (canonical or delta-wire bytes).
    bytes_to_cloud: int = 0
    #: Cloud → client transfer volume.
    bytes_from_cloud: int = 0
    #: Content-addressed chunk-store counters (delta runs; empty on
    #: full-routing runs, where no chunk store exists).
    chunk_store: dict[str, int] = field(default_factory=dict)
    #: Consistent-hash placement snapshot — scheme, vnodes, instances
    #: per portal, max/mean skew.  Populated only on ``placement="ring"``
    #: runs; empty (and omitted from the serialised form) otherwise, so
    #: legacy round-robin reports stay byte-identical.
    placement: dict[str, object] = field(default_factory=dict)
    #: Sharded-tier region-store counters (splits, moves, flushes,
    #: regions).  Same ring-mode-only rule as :attr:`placement`.
    storage: dict[str, int] = field(default_factory=dict)
    #: :class:`repro.obs.MetricsRegistry` snapshot (counters/gauges/
    #: histograms).  Populated only when the run collected metrics or
    #: traced; empty — and omitted from the serialised form — otherwise,
    #: so untraced report bytes are unchanged (the golden guarantee).
    metrics: dict[str, object] = field(default_factory=dict)
    #: Storage-lifecycle counters (sweeps, retired instances, compacted
    #: manifests, GC totals, hot/peak bytes, chunk-cache traffic).
    #: Populated only when the run swept (``gc_interval > 0``); empty —
    #: and omitted from the serialised form — otherwise, so reports of
    #: runs with the lifecycle off are byte-identical to older builds.
    lifecycle: dict[str, object] = field(default_factory=dict)

    # -- latency aggregates ------------------------------------------------

    @property
    def latency_mean(self) -> float:
        """Mean completion latency (0.0 when nothing completed)."""
        if not self.latencies:
            return 0.0
        return round(sum(self.latencies) / len(self.latencies), 9)

    @property
    def latency_p50(self) -> float:
        """Median completion latency."""
        return percentile(self.latencies, 0.50)

    @property
    def latency_p95(self) -> float:
        """95th-percentile completion latency."""
        return percentile(self.latencies, 0.95)

    @property
    def latency_p99(self) -> float:
        """99th-percentile completion latency."""
        return percentile(self.latencies, 0.99)

    @property
    def latency_max(self) -> float:
        """Worst completion latency."""
        return max(self.latencies, default=0.0)

    # -- component views ---------------------------------------------------

    def utilization(self) -> dict[str, float]:
        """Per-station utilization, AEA desks rolled up under ``aea``."""
        out: dict[str, float] = {}
        aea_busy = aea_capacity = 0.0
        for name, metrics in sorted(self.stations.items()):
            if name.startswith("aea:"):
                aea_busy += metrics.busy_seconds
                aea_capacity += metrics.workers * self.makespan_seconds
            else:
                out[name] = metrics.utilization
        if aea_capacity > 0:
            out["aea"] = round(aea_busy / aea_capacity, 9)
        return out

    def portal_utilization(self) -> dict[str, float]:
        """Utilization per portal station (ring runs; empty otherwise)."""
        return {
            name.split(":", 1)[1]: metrics.utilization
            for name, metrics in sorted(self.stations.items())
            if name.startswith("portal:")
        }

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-safe snapshot (full latency list included).

        The ``placement`` and ``storage`` sections exist only on
        sharded (``placement="ring"``) runs; they are *omitted*, not
        emitted empty, so pre-sharding report bytes are unchanged.
        """
        out: dict[str, object] = {
            "workload": self.workload,
            "mode": self.mode,
            "seed": self.seed,
            "instances_started": self.instances_started,
            "instances_completed": self.instances_completed,
            "hops_executed": self.hops_executed,
            "events_processed": self.events_processed,
            "makespan_seconds": self.makespan_seconds,
            "throughput_per_second": self.throughput_per_second,
            "latency": {
                "mean": self.latency_mean,
                "p50": self.latency_p50,
                "p95": self.latency_p95,
                "p99": self.latency_p99,
                "max": self.latency_max,
                "samples": self.latencies,
            },
            "stations": {
                name: metrics.to_dict()
                for name, metrics in sorted(self.stations.items())
            },
            "utilization": self.utilization(),
            "instances_audited": self.instances_audited,
            "audit_failures": self.audit_failures,
            "join_retries": self.join_retries,
            "routing": self.routing,
            "bytes_to_cloud": self.bytes_to_cloud,
            "bytes_from_cloud": self.bytes_from_cloud,
            "chunk_store": {k: self.chunk_store[k]
                            for k in sorted(self.chunk_store)},
        }
        if self.placement:
            out["placement"] = self.placement
        if self.storage:
            out["storage"] = {k: self.storage[k]
                              for k in sorted(self.storage)}
        if self.metrics:
            out["metrics"] = self.metrics
        if self.lifecycle:
            out["lifecycle"] = self.lifecycle
        return out

    def to_json(self) -> str:
        """Canonical serialisation (the determinism-test currency)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def render(self) -> str:
        """Human-readable summary table."""
        lines = [
            f"fleet run: {self.workload} [{self.mode} loop, "
            f"seed {self.seed}]",
            f"  instances : {self.instances_completed}/"
            f"{self.instances_started} completed, "
            f"{self.hops_executed} hops, "
            f"{self.events_processed} events",
            f"  makespan  : {self.makespan_seconds:.3f} sim-s   "
            f"throughput: {self.throughput_per_second:.3f} inst/sim-s",
            f"  latency   : mean {self.latency_mean:.3f}  "
            f"p50 {self.latency_p50:.3f}  p95 {self.latency_p95:.3f}  "
            f"p99 {self.latency_p99:.3f}  max {self.latency_max:.3f}",
            f"  audit     : {self.instances_audited} instances "
            f"re-verified cold, {self.audit_failures} failures; "
            f"{self.join_retries} join retries",
            f"  routing   : {self.routing}   "
            f"to cloud {self.bytes_to_cloud:,} B   "
            f"from cloud {self.bytes_from_cloud:,} B"
            + (f"   dedup hits {self.chunk_store.get('dedup_hits', 0)}"
               f" ({self.chunk_store.get('unique_bytes', 0):,} B unique "
               f"of {self.chunk_store.get('logical_bytes', 0):,} B logical)"
               if self.routing == "delta" else ""),
        ]
        if self.placement:
            portals = self.placement.get("portals", {})
            lines.append(
                f"  placement : ring, {self.placement.get('vnodes')} "
                f"vnodes, skew {self.placement.get('skew', 1.0):.3f}   "
                + "  ".join(f"{p}={n}"
                            for p, n in sorted(portals.items()))
            )
        if self.storage:
            lines.append(
                f"  storage   : {self.storage.get('regions', 0)} "
                f"regions, {self.storage.get('region_splits', 0)} "
                f"splits, {self.storage.get('region_moves', 0)} moves, "
                f"{self.storage.get('memstore_flushes', 0)} flushes"
            )
        if self.lifecycle:
            lines.append(
                f"  lifecycle : every {self.lifecycle.get('gc_interval')}"
                f" completions; {self.lifecycle.get('instances_retired', 0)}"
                f" retired, {self.lifecycle.get('manifests_compacted', 0)}"
                f" manifests compacted, "
                f"{self.lifecycle.get('gc_chunks_deleted', 0)} chunks "
                f"GC'd ({self.lifecycle.get('gc_bytes_reclaimed', 0):,} B)"
                f"; hot {self.lifecycle.get('hot_unique_bytes', 0):,} B "
                f"(peak {self.lifecycle.get('peak_hot_bytes', 0):,} B)"
            )
        lines.append(
            "  station        util   busy-s     jobs  maxQ  meanQ  "
            "wait-s",
        )
        for name, m in sorted(self.stations.items()):
            lines.append(
                f"  {name:<14s} {m.utilization:>5.1%} "
                f"{m.busy_seconds:>8.3f} {m.jobs:>8d} {m.max_queue_depth:>5d} "
                f"{m.mean_queue_depth:>6.2f} {m.wait_seconds:>7.3f}"
            )
        return "\n".join(lines)


@dataclass
class RealFleetReport:
    """Aggregates of one true-parallel (``--real``) fleet run.

    Unlike :class:`FleetReport` this mixes two kinds of quantity:

    * **deterministic aggregates** — instance counts, hops, wire bytes,
      audit outcomes, merged *simulated* per-component seconds.  These
      are identical for the same (world, spec, seed) no matter how many
      worker processes ran the instances; :meth:`deterministic_dict`
      exposes exactly this subset, and the real-mode determinism test
      compares it across worker counts.
    * **host measurements** — wall-clock seconds, per-instance host
      seconds, throughput per *wall* second, and the host's CPU count.
      These obviously vary run to run and are excluded from the
      deterministic view; benches record them (with ``cpu_count`` for
      honest interpretation of scaling numbers).
    """

    workload: str
    routing: str
    seed: int
    workers: int
    instances: int
    hops_executed: int
    bytes_to_cloud: int
    bytes_from_cloud: int
    instances_audited: int
    audit_failures: int
    #: Merged simulated seconds per component tag (see SimClock.absorb).
    sim_seconds: dict[str, float] = field(default_factory=dict)
    #: Instances served per portal id (ring placement; empty otherwise).
    #: Deterministic: placement is a pure function of each process id.
    portals: dict[str, int] = field(default_factory=dict)
    #: Summed HBase region splits across the per-instance clouds.
    region_splits: int = 0
    #: Host seconds each instance took inside its worker, index order.
    host_seconds_per_instance: list[float] = field(
        default_factory=list, repr=False)
    #: Host wall-clock seconds of the whole run (pool setup included).
    wall_seconds: float = 0.0
    cpu_count: int = 1

    @property
    def throughput_per_wall_second(self) -> float:
        """Completed instances per *host* second (0.0 for empty runs)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.instances / self.wall_seconds

    @property
    def host_seconds_total(self) -> float:
        """Summed per-instance host seconds (CPU-ish, not wall)."""
        return sum(self.host_seconds_per_instance)

    # -- serialisation ------------------------------------------------------

    def deterministic_dict(self) -> dict[str, object]:
        """The worker-count-independent subset (determinism currency)."""
        out: dict[str, object] = {
            "workload": self.workload,
            "routing": self.routing,
            "seed": self.seed,
            "instances": self.instances,
            "hops_executed": self.hops_executed,
            "bytes_to_cloud": self.bytes_to_cloud,
            "bytes_from_cloud": self.bytes_from_cloud,
            "instances_audited": self.instances_audited,
            "audit_failures": self.audit_failures,
            "region_splits": self.region_splits,
            "sim_seconds": {k: self.sim_seconds[k]
                            for k in sorted(self.sim_seconds)},
        }
        if self.portals:
            out["portals"] = {k: self.portals[k]
                              for k in sorted(self.portals)}
        return out

    def to_dict(self) -> dict[str, object]:
        """Full JSON-safe snapshot (host measurements included)."""
        out = self.deterministic_dict()
        out.update({
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 6),
            "host_seconds_total": round(self.host_seconds_total, 6),
            "throughput_per_wall_second": round(
                self.throughput_per_wall_second, 6),
            "cpu_count": self.cpu_count,
        })
        return out

    def to_json(self) -> str:
        """Canonical serialisation of the full snapshot."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def render(self) -> str:
        """Human-readable summary."""
        lines = [
            f"real fleet run: {self.workload} [seed {self.seed}, "
            f"{self.workers} worker process"
            f"{'es' if self.workers != 1 else ''}, "
            f"{self.cpu_count} host CPUs]",
            f"  instances : {self.instances} completed, "
            f"{self.hops_executed} hops",
            f"  wall time : {self.wall_seconds:.3f} s   "
            f"throughput: {self.throughput_per_wall_second:.3f} inst/s   "
            f"(host work: {self.host_seconds_total:.3f} s)",
            f"  audit     : {self.instances_audited} instances "
            f"re-verified cold, {self.audit_failures} failures",
            f"  routing   : {self.routing}   "
            f"to cloud {self.bytes_to_cloud:,} B   "
            f"from cloud {self.bytes_from_cloud:,} B",
        ]
        if self.portals:
            parts = "  ".join(f"{p}={n}"
                              for p, n in sorted(self.portals.items()))
            lines.append(f"  placement : ring   {parts}   "
                         f"region splits {self.region_splits}")
        if self.sim_seconds:
            parts = ", ".join(
                f"{name} {seconds:.3f}s"
                for name, seconds in sorted(self.sim_seconds.items())
            )
            lines.append(f"  sim cost  : {parts}")
        return "\n".join(lines)
