"""True-parallel fleet execution over a multiprocess worker pool.

The discrete-event :class:`~repro.fleet.fleet.Fleet` simulates
concurrency on one host thread; this module instead runs instances
*really* concurrently: a :class:`~concurrent.futures.ProcessPoolExecutor`
fans a population of independent process instances out over OS
processes, each doing the full cryptographic work end to end.

Design constraints that shape the code:

* **Picklable work units.**  Responder closures, key directories and
  live cloud components do not pickle, so nothing of that sort crosses
  the process boundary.  Each worker process rebuilds the world from
  :meth:`~repro.workloads.participants.World.to_dict` and the workload
  from its spec string once (pool initializer); per-instance work units
  are then just integers, and results come back as the plain
  :class:`InstanceResult` value object.
* **Placement-independent determinism.**  Every instance gets its
  *own* :class:`~repro.cloud.system.CloudSystem` (fresh HBase regions,
  fresh caches) and a process id derived from ``(seed, index)``, so an
  instance's documents, byte counts and simulated charges do not
  depend on which worker ran it or what ran before it on that worker.
  ``--workers 1`` and ``--workers N`` therefore produce identical
  deterministic aggregates (see ``RealFleetReport.deterministic_dict``
  and ``tests/fleet/test_real_mode.py``).
* **Nothing dropped at the boundary.**  Each instance runs inside
  ``clock.capture()``; its tagged simulated charges come back as plain
  ``(component, seconds)`` pairs and the parent merges them through
  :meth:`~repro.cloud.simclock.SimClock.absorb` into its own capture
  bucket, preserving per-component attribution across processes.

The audit hook cold-verifies every ``audit_every``-th instance *by
index* (the simulated fleet audits by completion order, which is not
stable under real concurrency) and forwards the batched-verification
knobs, so ``--real`` load tests exercise ``verify_batch()`` under true
parallelism.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..cloud.simclock import SimClock
from ..cloud.system import CloudClient, CloudSystem
from ..document.builder import build_initial_document
from ..document.vcache import VerificationCache
from ..document.verify import verify_document
from ..errors import CloudError, JoinNotReady
from ..obs.tracer import Tracer
from ..workloads.participants import World, build_world
from .fleet import TFC_IDENTITY
from .report import RealFleetReport
from .workload import FleetWorkload, workload_from_spec

__all__ = ["RealFleetConfig", "InstanceResult", "run_real_fleet"]


@dataclass(frozen=True)
class RealFleetConfig:
    """Knobs of one true-parallel (``--real``) fleet run."""

    #: Workload spec string (``fig9``, ``chain:N[:P]``, …) — shipped to
    #: workers instead of the unpicklable responder closures.
    spec: str
    instances: int
    seed: int = 0
    #: OS worker processes (1 = run inline in this process, same code).
    workers: int = 1
    #: Extra loop iterations for loop-guarded workloads (``fig9``).
    loops: int = 0
    #: Cold-re-verify every Nth instance *by index* (0 disables).
    audit_every: int = 25
    #: Delta document routing inside each instance's cloud.
    delta_routing: bool = False
    #: Batched RSA verification knobs (see :func:`verify_document`).
    verify_workers: int | None = None
    verify_batch: bool | None = None
    #: RSA modulus for the generated world (when none is supplied).
    bits: int = 1024
    #: Portals / region servers per per-instance cloud.
    portals: int = 2
    region_servers: int = 2
    #: ``"ring"`` pins each instance to one portal by consistent hash
    #: (and reports instances-per-portal); default keeps round-robin.
    placement: str = "round-robin"
    #: Factor-R replication of delta chunks over the region servers
    #: (requires ``delta_routing``; ``None`` keeps the single store).
    chunk_replicas: int | None = None
    #: HBase region auto-split thresholds per per-instance cloud.
    split_threshold_rows: int = 256
    split_threshold_bytes: int | None = None


@dataclass
class InstanceResult:
    """Picklable per-instance outcome returned by a pool worker."""

    index: int
    process_id: str
    hops: int
    bytes_to_cloud: int
    bytes_from_cloud: int
    audited: bool
    audit_failed: bool
    #: Per-component simulated seconds, sorted by component name.
    charges: list[tuple[str, float]] = field(default_factory=list)
    #: Host wall-clock seconds this instance took inside its worker.
    host_seconds: float = 0.0
    #: Portal id that served this instance ("" unless ring placement).
    portal: str = ""
    #: HBase region splits inside this instance's cloud.
    region_splits: int = 0
    #: Serialized worker-side :meth:`repro.obs.Tracer.payload` (``None``
    #: unless the run was traced) — the parent re-bases and merges it.
    trace: dict[str, object] | None = None


# Worker-process state, rebuilt once per process by :func:`_init_worker`
# (responders and directories do not pickle; the spec + world dict do).
_WORKER: dict[str, object] = {}


def _init_worker(payload: dict[str, object]) -> None:
    """Pool initializer: rebuild world + workload inside this process."""
    world = World.from_dict(payload["world"])  # type: ignore[arg-type]
    workload = workload_from_spec(
        str(payload["spec"]), loops=int(payload["loops"]),  # type: ignore[arg-type]
    )
    _WORKER.clear()
    _WORKER.update(payload)
    _WORKER["world_obj"] = world
    _WORKER["workload_obj"] = workload


def _drive_instance(system: CloudSystem, workload: FleetWorkload,
                    world: World, process_id: str,
                    max_rounds: int = 10_000) -> tuple[int, list[CloudClient]]:
    """Run one instance start to finish; return (hops, clients).

    Adapted from :func:`~repro.cloud.system.run_process_in_cloud`, but
    keeps the clients so the caller can read their wire counters.
    """
    designer = workload.designer
    initial = build_initial_document(
        workload.definition, world.keypair(designer),
        process_id=process_id, backend=system.backend,
        # Simulated creation time, as in the event-driven fleet: host
        # wall clocks would leak varying float widths into byte counts.
        created_at=0.0,
    )
    clients = {
        identity: system.client(world.keypair(identity))
        for identity in workload.identities
    }
    clients[designer].upload_initial(initial)

    hops = 0
    for _ in range(max_rounds):
        progressed = False
        pending = False
        for identity, client in clients.items():
            if identity == designer:
                continue
            for entry in client.todo():
                if entry.process_id != process_id:
                    continue
                pending = True
                responder = workload.responders.get(entry.activity_id)
                if responder is None:
                    raise CloudError(
                        f"no responder for activity {entry.activity_id!r}"
                    )
                try:
                    client.execute(process_id, entry.activity_id, responder)
                    progressed = True
                    hops += 1
                except JoinNotReady:
                    continue
        if not pending:
            return hops, list(clients.values())
        if not progressed:
            raise CloudError(
                f"process {process_id!r} deadlocked: pending work exists "
                f"but nothing can execute"
            )
    raise CloudError(f"process {process_id!r} exceeded {max_rounds} rounds")


def _run_instance(index: int) -> InstanceResult:
    """One complete process instance inside a (possibly pooled) worker."""
    world: World = _WORKER["world_obj"]  # type: ignore[assignment]
    workload: FleetWorkload = _WORKER["workload_obj"]  # type: ignore[assignment]
    seed = int(_WORKER["seed"])  # type: ignore[arg-type]
    audit_every = int(_WORKER["audit_every"])  # type: ignore[arg-type]
    verify_workers = _WORKER["verify_workers"]
    verify_batch = _WORKER["verify_batch"]

    start = time.perf_counter()
    # Fresh per-INSTANCE cloud: determinism must not depend on which
    # worker process ran the instance or what ran there before.
    system = CloudSystem(
        world.directory,
        world.keypair(TFC_IDENTITY),
        portals=int(_WORKER["portals"]),  # type: ignore[arg-type]
        region_servers=int(_WORKER["region_servers"]),  # type: ignore[arg-type]
        backend=world.backend,
        verify_cache=VerificationCache(),
        delta_routing=bool(_WORKER["delta_routing"]),
        verify_workers=verify_workers,  # type: ignore[arg-type]
        verify_batch=verify_batch,  # type: ignore[arg-type]
        placement=str(_WORKER["placement"]),
        chunk_replicas=_WORKER["chunk_replicas"],  # type: ignore[arg-type]
        split_threshold_rows=int(_WORKER["split_threshold_rows"]),  # type: ignore[arg-type]
        split_threshold_bytes=_WORKER["split_threshold_bytes"],  # type: ignore[arg-type]
    )
    process_id = f"real{seed}-{index:06d}"
    # Per-instance tracer: each worker collects its own span tree (over
    # a fresh cursor) and ships it back as a picklable payload; the
    # parent re-bases and concatenates them in index order, mirroring
    # how the simulated charges merge through CostCapture/absorb.
    tracer = Tracer() if _WORKER.get("trace") else None
    if tracer is not None:
        system.attach_tracer(tracer)
    trace_span = (tracer.span("instance", component="fleet",
                              instance=process_id)
                  if tracer is not None else None)
    with system.clock.capture() as captured:
        if trace_span is not None:
            trace_span.__enter__()
        try:
            hops, clients = _drive_instance(system, workload, world,
                                            process_id)
            audited = bool(audit_every) and index % audit_every == 0
            audit_failed = False
            if audited:
                document = system.pool.latest(process_id)
                try:
                    verify_document(
                        document, system.directory, system.backend,
                        definition_reader=(system.tfc.identity,
                                           system.tfc.keypair.private_key),
                        workers=verify_workers,  # type: ignore[arg-type]
                        batch=verify_batch,  # type: ignore[arg-type]
                    )
                except Exception:
                    audit_failed = True
        finally:
            if trace_span is not None:
                trace_span.__exit__(None, None, None)
    return InstanceResult(
        index=index,
        process_id=process_id,
        hops=hops,
        bytes_to_cloud=sum(c.bytes_sent for c in clients),
        bytes_from_cloud=sum(c.bytes_received for c in clients),
        audited=audited,
        audit_failed=audit_failed,
        # Aggregate per component before pickling: the report only needs
        # sums, and the raw charge list grows with every simulated RPC.
        charges=sorted(captured.by_component().items()),
        host_seconds=time.perf_counter() - start,
        portal=(system.portal_for(process_id).portal_id
                if system.placement is not None else ""),
        region_splits=system.hbase.stats["splits"],
        trace=tracer.payload() if tracer is not None else None,
    )


def run_real_fleet(config: RealFleetConfig,
                   world: World | None = None,
                   tracer: Tracer | None = None) -> RealFleetReport:
    """Run *config.instances* instances over a real OS process pool.

    *world* lets callers reuse one generated PKI world across several
    runs (key generation is the expensive, non-deterministic part; the
    determinism test passes the same world to the ``workers=1`` and
    ``workers=N`` runs it compares).  When omitted, a fresh world is
    built for the workload's identities.

    *tracer* (optional) collects every instance's worker-side span tree:
    workers trace locally and the payloads merge back here in index
    order, so the assembled trace is identical for ``--workers 1`` and
    ``--workers N`` — the same guarantee the deterministic aggregates
    make.
    """
    if config.instances < 0:
        raise ValueError("instances must be non-negative")
    if config.workers < 1:
        raise ValueError("workers must be at least 1")
    workload = workload_from_spec(config.spec, loops=config.loops)
    if world is None:
        world = build_world([*workload.identities, TFC_IDENTITY],
                            bits=config.bits)
    payload: dict[str, object] = {
        "world": world.to_dict(),
        "spec": config.spec,
        "loops": config.loops,
        "seed": config.seed,
        "audit_every": config.audit_every,
        "delta_routing": config.delta_routing,
        "verify_workers": config.verify_workers,
        "verify_batch": config.verify_batch,
        "portals": config.portals,
        "region_servers": config.region_servers,
        "placement": config.placement,
        "chunk_replicas": config.chunk_replicas,
        "split_threshold_rows": config.split_threshold_rows,
        "split_threshold_bytes": config.split_threshold_bytes,
        "trace": tracer is not None,
    }

    wall_start = time.perf_counter()
    indices = range(config.instances)
    if config.workers == 1 or config.instances <= 1:
        # Same code path as the pool, minus the processes: initialize
        # this process as "the worker" and map inline.
        _init_worker(payload)
        results = [_run_instance(index) for index in indices]
    else:
        with ProcessPoolExecutor(
            max_workers=config.workers,
            initializer=_init_worker,
            initargs=(payload,),
        ) as pool:
            chunksize = max(1, config.instances // (config.workers * 4))
            results = list(pool.map(_run_instance, indices,
                                    chunksize=chunksize))
    wall_seconds = time.perf_counter() - wall_start

    # Results arrive in index order from pool.map, but sort defensively:
    # aggregate sums below must not depend on completion order.
    results.sort(key=lambda r: r.index)
    if tracer is not None:
        for result in results:
            if result.trace is not None:
                tracer.absorb(result.trace)
    clock = SimClock()
    with clock.capture() as merged:
        for result in results:
            clock.absorb(result.charges)
    sim_seconds = {component: round(seconds, 9)
                   for component, seconds in merged.by_component().items()}

    portal_counts: dict[str, int] = {}
    for result in results:
        if result.portal:
            portal_counts[result.portal] = (
                portal_counts.get(result.portal, 0) + 1)

    return RealFleetReport(
        workload=workload.name,
        routing="delta" if config.delta_routing else "full",
        seed=config.seed,
        workers=config.workers,
        instances=len(results),
        hops_executed=sum(r.hops for r in results),
        bytes_to_cloud=sum(r.bytes_to_cloud for r in results),
        bytes_from_cloud=sum(r.bytes_from_cloud for r in results),
        instances_audited=sum(1 for r in results if r.audited),
        audit_failures=sum(1 for r in results if r.audit_failed),
        sim_seconds=sim_seconds,
        portals=portal_counts,
        region_splits=sum(r.region_splits for r in results),
        host_seconds_per_instance=[r.host_seconds for r in results],
        wall_seconds=wall_seconds,
        cpu_count=os.cpu_count() or 1,
    )
