"""FIFO multi-server service stations for the fleet scheduler.

Each shared cloud component (portal tier, TFC notary, document pool,
notification fan-out, every participant's AEA desk) is modelled as a
:class:`Station`: *k* identical servers fed by one FIFO queue.  The
fleet scheduler submits jobs in nondecreasing arrival order (it is a
discrete-event simulation), so a plain earliest-free-server assignment
is exactly FIFO and deterministic.

Stations accumulate the three observables the paper's scalability
argument (§3) is about: busy time (→ utilization), waiting time
(→ backpressure), and a queue-depth time series.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

__all__ = ["Station", "StationMetrics"]


@dataclass(frozen=True)
class StationMetrics:
    """Aggregated load figures of one station over a fleet run."""

    name: str
    workers: int
    jobs: int
    busy_seconds: float
    wait_seconds: float
    #: busy / (workers × horizon); 0.0 for an idle station.
    utilization: float
    max_queue_depth: int
    #: Time-weighted mean number of waiting jobs over the horizon.
    mean_queue_depth: float

    def to_dict(self) -> dict[str, object]:
        """JSON-safe representation (stable key order)."""
        return {
            "name": self.name,
            "workers": self.workers,
            "jobs": self.jobs,
            "busy_seconds": self.busy_seconds,
            "wait_seconds": self.wait_seconds,
            "utilization": self.utilization,
            "max_queue_depth": self.max_queue_depth,
            "mean_queue_depth": self.mean_queue_depth,
        }


@dataclass
class Station:
    """One FIFO service queue with *workers* identical servers."""

    name: str
    workers: int = 1
    jobs: int = 0
    busy_seconds: float = 0.0
    wait_seconds: float = 0.0
    #: ``(time, delta)`` queue-depth transitions: +1 when a job has to
    #: wait, −1 when its service starts.
    _depth_deltas: list[tuple[float, int]] = field(default_factory=list)
    _free_at: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("a station needs at least one worker")
        self._free_at = [0.0] * self.workers

    def submit(self, arrival: float, service_seconds: float) -> float:
        """Enqueue a job arriving at *arrival*; return its finish time.

        Jobs must be submitted in nondecreasing arrival order (the
        scheduler guarantees this); service then starts on the earliest
        free server, which under that ordering is FIFO.
        """
        if service_seconds < 0:
            raise ValueError("service time must be non-negative")
        free = heapq.heappop(self._free_at)
        start = max(free, arrival)
        end = start + service_seconds
        heapq.heappush(self._free_at, end)
        self.jobs += 1
        self.busy_seconds += service_seconds
        if start > arrival:
            self.wait_seconds += start - arrival
            self._depth_deltas.append((arrival, +1))
            self._depth_deltas.append((start, -1))
        return end

    # -- observability -------------------------------------------------------

    def queue_depth_series(self) -> list[tuple[float, int]]:
        """``(time, depth)`` steps of the waiting-job count, merged."""
        deltas = sorted(self._depth_deltas)
        series: list[tuple[float, int]] = []
        depth = 0
        for time, delta in deltas:
            depth += delta
            if series and series[-1][0] == time:
                series[-1] = (time, depth)
            else:
                series.append((time, depth))
        return series

    def metrics(self, horizon: float) -> StationMetrics:
        """Snapshot of the station's load over ``[0, horizon]``."""
        series = self.queue_depth_series()
        max_depth = max((d for _, d in series), default=0)
        area = 0.0
        for (t0, depth), (t1, _) in zip(series, series[1:]):
            area += depth * (t1 - t0)
        if series and horizon > series[-1][0]:
            area += series[-1][1] * (horizon - series[-1][0])
        return StationMetrics(
            name=self.name,
            workers=self.workers,
            jobs=self.jobs,
            busy_seconds=round(self.busy_seconds, 9),
            wait_seconds=round(self.wait_seconds, 9),
            utilization=(round(self.busy_seconds
                               / (self.workers * horizon), 9)
                         if horizon > 0 else 0.0),
            max_queue_depth=max_depth,
            mean_queue_depth=(round(area / horizon, 9)
                              if horizon > 0 else 0.0),
        )
