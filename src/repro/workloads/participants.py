"""Simulated cross-enterprise participant population.

Builds the PKI world the paper assumes: enterprises, each with its own
certificate authority, and participants enrolled under their
enterprise's CA.  All CAs are mutually trusted inside one
:class:`~repro.crypto.pki.KeyDirectory`, modelling the cross-enterprise
trust agreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.backend import CryptoBackend, default_backend
from ..crypto.keys import KeyPair
from ..crypto.pki import CertificateAuthority, KeyDirectory

__all__ = ["World", "build_world"]

#: Default RSA modulus for simulated participants.  1024-bit keys keep
#: full-process tests fast; benches that reproduce the paper's tables
#: use 2048-bit keys (see ``benchmarks/``).
DEFAULT_BITS = 1024


@dataclass
class World:
    """A ready-to-use population: directory, key pairs, authorities."""

    directory: KeyDirectory
    keypairs: dict[str, KeyPair]
    authorities: dict[str, CertificateAuthority]
    backend: CryptoBackend = field(repr=False, default=None)  # type: ignore[assignment]

    def keypair(self, identity: str) -> KeyPair:
        """Key pair of one participant."""
        return self.keypairs[identity]

    def add_participant(self, identity: str,
                        bits: int = DEFAULT_BITS) -> KeyPair:
        """Enroll a new participant under their enterprise's CA.

        The enterprise is the domain part of ``user@domain``; a CA is
        created on first use of a domain.
        """
        domain = identity.rsplit("@", 1)[-1]
        ca = self.authorities.get(domain)
        if ca is None:
            ca = CertificateAuthority(f"ca.{domain}", backend=self.backend)
            self.authorities[domain] = ca
            self.directory.trust(ca)
        keypair = KeyPair.generate(identity, bits=bits, backend=self.backend)
        self.directory.enroll(keypair, ca.name)
        self.keypairs[identity] = keypair
        return keypair

    # -- persistence (used by the CLI) --------------------------------------

    def to_dict(self) -> dict[str, object]:
        """JSON-safe snapshot of the whole world (INCLUDES private keys).

        Meant for demos and tests; a production deployment would keep
        each private key on its owner's machine only.
        """
        return {
            "authorities": [
                {"name": ca.name, "keypair": ca.keypair.to_dict()}
                for ca in self.authorities.values()
            ],
            "keypairs": [kp.to_dict() for kp in self.keypairs.values()],
            "certificates": [
                cert.to_dict() for cert in self.directory.certificates()
            ],
        }

    def to_public_dict(self) -> dict[str, object]:
        """Verification-only snapshot: CA public keys + certificates.

        This is what a third-party auditor needs to verify documents —
        no private key of any party included.
        """
        from ..crypto.keys import public_key_to_dict

        return {
            "authorities": [
                {"name": ca.name,
                 "public_key": public_key_to_dict(ca.public_key)}
                for ca in self.authorities.values()
            ],
            "certificates": [
                cert.to_dict() for cert in self.directory.certificates()
            ],
        }

    @classmethod
    def from_public_dict(cls, data: dict[str, object],
                         backend: CryptoBackend | None = None) -> "World":
        """Restore a verification-only world (no private keys).

        ``keypairs`` is empty and the CAs cannot issue; the directory
        resolves public keys for verification.
        """
        from ..crypto.keys import public_key_from_dict
        from ..crypto.pki import Certificate

        backend = backend or default_backend()
        world = cls(directory=KeyDirectory(), keypairs={},
                    authorities={}, backend=backend)
        for item in data.get("authorities", ()):  # type: ignore[union-attr]
            ca = CertificateAuthority(
                str(item["name"]),  # type: ignore[index]
                public_key=public_key_from_dict(item["public_key"]),  # type: ignore[index]
                backend=backend,
            )
            world.authorities[ca.name.removeprefix("ca.")] = ca
            world.directory.trust(ca)
        for item in data.get("certificates", ()):  # type: ignore[union-attr]
            world.directory.register(
                Certificate.from_dict(item)  # type: ignore[arg-type]
            )
        return world

    @classmethod
    def from_dict(cls, data: dict[str, object],
                  backend: CryptoBackend | None = None) -> "World":
        """Restore a world saved by :meth:`to_dict`."""
        from ..crypto.pki import Certificate

        backend = backend or default_backend()
        world = cls(directory=KeyDirectory(), keypairs={},
                    authorities={}, backend=backend)
        for item in data.get("authorities", ()):  # type: ignore[union-attr]
            keypair = KeyPair.from_dict(item["keypair"])  # type: ignore[index]
            ca = CertificateAuthority(str(item["name"]),  # type: ignore[index]
                                      keypair=keypair, backend=backend)
            domain = ca.name.removeprefix("ca.")
            world.authorities[domain] = ca
            world.directory.trust(ca)
        for item in data.get("keypairs", ()):  # type: ignore[union-attr]
            keypair = KeyPair.from_dict(item)  # type: ignore[arg-type]
            world.keypairs[keypair.identity] = keypair
        max_serial: dict[str, int] = {}
        for item in data.get("certificates", ()):  # type: ignore[union-attr]
            cert = Certificate.from_dict(item)  # type: ignore[arg-type]
            world.directory.register(cert)
            max_serial[cert.issuer] = max(
                max_serial.get(cert.issuer, 0), cert.serial
            )
        # Keep issuing from past the restored serials.
        for ca in world.authorities.values():
            ca._next_serial = max_serial.get(ca.name, 0) + 1
        return world


def build_world(identities: list[str],
                bits: int = DEFAULT_BITS,
                backend: CryptoBackend | None = None) -> World:
    """Create a cross-enterprise world for the given identities.

    ``user@domain`` identities are grouped into enterprises by domain;
    each domain gets its own CA, and the returned directory trusts all
    of them.
    """
    backend = backend or default_backend()
    world = World(
        directory=KeyDirectory(),
        keypairs={},
        authorities={},
        backend=backend,
    )
    for identity in identities:
        world.add_participant(identity, bits=bits)
    return world
