"""Workloads: the paper's experimental processes and synthetic generators."""

from .chinese_wall import chinese_wall_definition, chinese_wall_responders
from .figure9 import (
    figure9_responders,
    figure_9a_definition,
    figure_9b_definition,
)
from .generator import (
    auto_responders,
    chain_definition,
    diamond_definition,
    loop_definition,
    participant_pool,
    random_definition,
)
from .participants import World, build_world

__all__ = [
    "World",
    "auto_responders",
    "build_world",
    "chain_definition",
    "chinese_wall_definition",
    "chinese_wall_responders",
    "diamond_definition",
    "figure9_responders",
    "figure_9a_definition",
    "figure_9b_definition",
    "loop_definition",
    "participant_pool",
    "random_definition",
]
