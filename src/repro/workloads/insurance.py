"""A realistic cross-enterprise workload: insurance claim processing.

The paper's introduction motivates cross-enterprise WfMSs with business
processes spanning companies; this workload models one with four
enterprises (the insurer, a hospital, an independent fraud assessor,
and a bank) and every control pattern at once:

* XOR triage by claim amount (large claims take the full-review path);
* AND-split of medical and fraud assessments, AND-joined for
  consolidation;
* a loop (the senior approver can send the claim back for re-filing);
* field-level confidentiality: the claimant's bank account is readable
  by the bank's payment desk only, and the medical report never reaches
  the bank.

The default responders exercise *both* branches in one process
instance: the first filing is a large claim (full review) that gets
sent back, the re-filed claim is small (fast track) and is approved.
"""

from __future__ import annotations

from ..core.aea import ActivityContext, Responder
from ..model.builder import WorkflowBuilder
from ..model.controlflow import END
from ..model.definition import WorkflowDefinition

__all__ = ["PARTICIPANTS", "DESIGNER", "THRESHOLD",
           "insurance_definition", "insurance_responders"]

PARTICIPANTS = {
    "FILE": "claimant@public.example",
    "TRIAGE": "triage@insurer.example",
    "DISPATCH": "casework@insurer.example",
    "MEDICAL": "physician@hospital.example",
    "FRAUD": "investigator@assessor.example",
    "CONSOLIDATE": "casework@insurer.example",
    "FAST": "fasttrack@insurer.example",
    "DECIDE": "senior@insurer.example",
    "PAY": "payments@bank.example",
    "NOTIFY": "service@insurer.example",
}

DESIGNER = "process-office@insurer.example"

#: Claims at or above this amount take the full-review path.
THRESHOLD = 10_000


def insurance_definition(
    participants: dict[str, str] | None = None,
    designer: str = DESIGNER,
) -> WorkflowDefinition:
    """Build the ten-activity insurance claim workflow."""
    who = dict(PARTICIPANTS)
    if participants:
        who.update(participants)
    builder = (
        WorkflowBuilder(
            "insurance-claim", designer=designer,
            description="Cross-enterprise claim handling: insurer, "
                        "hospital, fraud assessor, bank",
        )
        .activity("FILE", who["FILE"], name="File claim", join="xor",
                  responses=[_int("claim_amount"), "incident_desc",
                             "bank_account"])
        .activity("TRIAGE", who["TRIAGE"], name="Triage",
                  requests=["claim_amount"], responses=["triage_note"],
                  split="xor")
        .activity("DISPATCH", who["DISPATCH"], name="Dispatch reviews",
                  requests=["incident_desc"], responses=["case_ref"],
                  split="and")
        .activity("MEDICAL", who["MEDICAL"], name="Medical assessment",
                  requests=["incident_desc", "case_ref"],
                  responses=["medical_report"])
        .activity("FRAUD", who["FRAUD"], name="Fraud assessment",
                  requests=["incident_desc", "claim_amount", "case_ref"],
                  responses=["fraud_score"])
        .activity("CONSOLIDATE", who["CONSOLIDATE"], join="and",
                  name="Consolidate assessments",
                  requests=["medical_report", "fraud_score"],
                  responses=["consolidated_note"])
        .activity("FAST", who["FAST"], name="Fast-track check",
                  requests=["claim_amount"], responses=["fast_note"])
        .activity("DECIDE", who["DECIDE"], name="Decide", join="xor",
                  requests=["claim_amount"], responses=["decision"],
                  split="xor")
        .activity("PAY", who["PAY"], name="Pay out",
                  requests=["bank_account", "claim_amount"],
                  responses=["payment_ref"])
        .activity("NOTIFY", who["NOTIFY"], name="Notify rejection",
                  requests=["decision"], responses=["notice"])
        .transition("FILE", "TRIAGE")
        .transition("TRIAGE", "DISPATCH",
                    condition=f"claim_amount >= {THRESHOLD}")
        .transition("TRIAGE", "FAST", priority=1)
        .transition("DISPATCH", "MEDICAL")
        .transition("DISPATCH", "FRAUD")
        .transition("MEDICAL", "CONSOLIDATE")
        .transition("FRAUD", "CONSOLIDATE")
        .transition("CONSOLIDATE", "DECIDE")
        .transition("FAST", "DECIDE")
        .transition("DECIDE", "PAY", condition="decision == 'approved'")
        .transition("DECIDE", "FILE",
                    condition="decision == 'more-info'", priority=1)
        .transition("DECIDE", "NOTIFY", priority=2)
        .transition("PAY", END)
        .transition("NOTIFY", END)
        # Field-level confidentiality across enterprise boundaries:
        # the bank account is for the payment desk only, and the
        # medical report stays inside insurer+hospital.
        .readers("FILE", "bank_account", [PARTICIPANTS["PAY"]])
        .readers("MEDICAL", "medical_report",
                 [PARTICIPANTS["CONSOLIDATE"], PARTICIPANTS["DECIDE"]])
        .readers("FRAUD", "fraud_score",
                 [PARTICIPANTS["CONSOLIDATE"], PARTICIPANTS["DECIDE"]])
    )
    return builder.build()


def _int(name: str):
    from ..model.activity import FieldSpec

    return FieldSpec(name, "int")


def insurance_responders(first_amount: int = 25_000,
                         refiled_amount: int = 5_000,
                         ) -> dict[str, Responder]:
    """Responders driving both branches plus one loop iteration."""

    def file_claim(context: ActivityContext) -> dict[str, str]:
        amount = first_amount if context.iteration == 0 else refiled_amount
        return {
            "claim_amount": str(amount),
            "incident_desc": f"water damage, filing #{context.iteration}",
            "bank_account": "DE02 1203 0000 0000 2020 51",
        }

    def triage(context: ActivityContext) -> dict[str, str]:
        return {"triage_note":
                f"amount {context.requests['claim_amount']} triaged"}

    def dispatch(context: ActivityContext) -> dict[str, str]:
        return {"case_ref": f"CASE-{context.process_id[:6]}"}

    def medical(context: ActivityContext) -> dict[str, str]:
        return {"medical_report": "injuries consistent with the incident"}

    def fraud(context: ActivityContext) -> dict[str, str]:
        return {"fraud_score": "low (0.12)"}

    def consolidate(context: ActivityContext) -> dict[str, str]:
        return {"consolidated_note":
                f"{context.requests['medical_report']} / "
                f"fraud {context.requests['fraud_score']}"}

    def fast(context: ActivityContext) -> dict[str, str]:
        return {"fast_note": "within fast-track limits"}

    def decide(context: ActivityContext) -> dict[str, str]:
        if context.iteration == 0:
            return {"decision": "more-info"}
        return {"decision": "approved"}

    def pay(context: ActivityContext) -> dict[str, str]:
        return {"payment_ref":
                f"PAY-{context.requests['claim_amount']}-ok"}

    def notify(context: ActivityContext) -> dict[str, str]:
        return {"notice": f"claim {context.requests['decision']}"}

    return {
        "FILE": file_claim, "TRIAGE": triage, "DISPATCH": dispatch,
        "MEDICAL": medical, "FRAUD": fraud, "CONSOLIDATE": consolidate,
        "FAST": fast, "DECIDE": decide, "PAY": pay, "NOTIFY": notify,
    }
