"""Synthetic workflow generation for scaling benches and property tests.

The paper's evaluation uses a fixed five-activity process; its prose
claims, however, are about *scaling* ("the size of the DRA4WfMS and the
time for decrypting and verifying signatures were proportional to the
numbers of CERs and signatures").  These generators produce workflows
of arbitrary shape so the claims can be tested across sizes:

* :func:`chain_definition` — n activities in sequence;
* :func:`diamond_definition` — AND-split into *width* parallel branches;
* :func:`loop_definition` — a body executed *k* times around a loop;
* :func:`random_definition` — a random composition of the above blocks
  (always valid by construction).
"""

from __future__ import annotations

import random

from ..core.aea import ActivityContext, Responder
from ..model.builder import WorkflowBuilder
from ..model.controlflow import END
from ..model.definition import WorkflowDefinition

__all__ = [
    "chain_definition",
    "diamond_definition",
    "loop_definition",
    "random_definition",
    "auto_responders",
    "participant_pool",
]


def participant_pool(count: int, domain: str = "enterprise.example",
                     ) -> list[str]:
    """Deterministic participant identities ``p0@…, p1@…``."""
    return [f"p{i}@{domain}" for i in range(count)]


def chain_definition(length: int,
                     participants: list[str] | None = None,
                     designer: str = "designer@enterprise.example",
                     ) -> WorkflowDefinition:
    """``length`` activities in sequence, each reading its predecessor."""
    if length < 1:
        raise ValueError("chain length must be >= 1")
    pool = participants or participant_pool(length)
    builder = WorkflowBuilder(f"chain-{length}", designer=designer)
    for i in range(length):
        requests = [f"v{i - 1}"] if i > 0 else []
        builder.activity(f"A{i}", pool[i % len(pool)],
                         requests=requests, responses=[f"v{i}"])
        if i > 0:
            builder.transition(f"A{i - 1}", f"A{i}")
    builder.transition(f"A{length - 1}", END)
    return builder.build()


def diamond_definition(width: int,
                       participants: list[str] | None = None,
                       designer: str = "designer@enterprise.example",
                       ) -> WorkflowDefinition:
    """AND-split into *width* parallel reviews, then an AND-join."""
    if width < 2:
        raise ValueError("diamond width must be >= 2")
    pool = participants or participant_pool(width + 2)
    builder = WorkflowBuilder(f"diamond-{width}", designer=designer)
    builder.activity("S", pool[0], responses=["subject"], split="and")
    join_requests = []
    for i in range(width):
        builder.activity(f"P{i}", pool[(i + 1) % len(pool)],
                         requests=["subject"], responses=[f"opinion{i}"])
        builder.transition("S", f"P{i}")
        builder.transition(f"P{i}", "J")
        join_requests.append(f"opinion{i}")
    builder.activity("J", pool[-1], join="and",
                     requests=join_requests, responses=["verdict"])
    builder.transition("J", END)
    return builder.build()


def loop_definition(body_length: int = 2,
                    participants: list[str] | None = None,
                    designer: str = "designer@enterprise.example",
                    ) -> WorkflowDefinition:
    """A sequential body whose last activity loops back to the first.

    The loop guard reads the final activity's ``verdict`` field;
    :func:`auto_responders` answers ``"again"`` until the requested
    iteration count is reached.
    """
    if body_length < 1:
        raise ValueError("loop body must have at least one activity")
    pool = participants or participant_pool(body_length)
    builder = WorkflowBuilder(f"loop-{body_length}", designer=designer)
    for i in range(body_length):
        join = "xor" if i == 0 else "none"
        split = "xor" if i == body_length - 1 else "none"
        requests = [f"v{i - 1}"] if i > 0 else []
        responses = ["verdict"] if i == body_length - 1 else [f"v{i}"]
        builder.activity(f"L{i}", pool[i % len(pool)],
                         requests=requests, responses=responses,
                         split=split, join=join)
        if i > 0:
            builder.transition(f"L{i - 1}", f"L{i}")
    last = f"L{body_length - 1}"
    builder.transition(last, END, condition="verdict == 'done'")
    builder.transition(last, "L0", priority=1)
    return builder.build()


def random_definition(seed: int,
                      blocks: int = 3,
                      designer: str = "designer@enterprise.example",
                      ) -> WorkflowDefinition:
    """A random but always-valid workflow: a sequence of blocks.

    Each block is a single activity, an AND-diamond (2–3 branches), or
    an XOR choice (2 branches re-joining).  Using construction rules
    rather than rejection sampling keeps generation O(size).
    """
    rng = random.Random(seed)
    pool = participant_pool(6)
    builder = WorkflowBuilder(f"random-{seed}", designer=designer)
    counter = 0

    def fresh(prefix: str) -> str:
        nonlocal counter
        counter += 1
        return f"{prefix}{counter}"

    def participant() -> str:
        return rng.choice(pool)

    # Entry activity.
    previous = fresh("N")
    previous_var = f"out_{previous}"
    builder.activity(previous, participant(), responses=[previous_var])

    for _ in range(blocks):
        kind = rng.choice(("single", "diamond", "choice"))
        if kind == "single":
            node = fresh("N")
            var = f"out_{node}"
            builder.activity(node, participant(),
                             requests=[previous_var], responses=[var])
            builder.transition(previous, node)
            previous, previous_var = node, var
        elif kind == "diamond":
            width = rng.randint(2, 3)
            split_node, join_node = previous, fresh("J")
            # Retrofit the split kind by rebuilding is impossible with
            # the frozen Activity, so insert an explicit splitter.
            splitter = fresh("S")
            builder.activity(splitter, participant(),
                             requests=[previous_var],
                             responses=[f"out_{splitter}"], split="and")
            builder.transition(split_node, splitter)
            branch_vars = []
            for b in range(width):
                node = fresh("P")
                var = f"out_{node}"
                builder.activity(node, participant(),
                                 requests=[f"out_{splitter}"],
                                 responses=[var])
                builder.transition(splitter, node)
                builder.transition(node, join_node)
                branch_vars.append(var)
            builder.activity(join_node, participant(), join="and",
                             requests=branch_vars,
                             responses=[f"out_{join_node}"])
            previous, previous_var = join_node, f"out_{join_node}"
        else:  # choice
            chooser = fresh("X")
            chooser_var = f"out_{chooser}"
            builder.activity(chooser, participant(),
                             requests=[previous_var],
                             responses=[chooser_var], split="xor")
            builder.transition(previous, chooser)
            left, right, join_node = fresh("P"), fresh("P"), fresh("J")
            for node in (left, right):
                builder.activity(node, participant(),
                                 requests=[chooser_var],
                                 responses=[f"out_{node}"])
                builder.transition(node, join_node)
            builder.transition(chooser, left,
                               condition=f"{chooser_var} == 'left'")
            builder.transition(chooser, right, priority=1)
            builder.activity(join_node, participant(), join="xor",
                             responses=[f"out_{join_node}"])
            previous, previous_var = join_node, f"out_{join_node}"

    builder.transition(previous, END)
    return builder.build()


def auto_responders(definition: WorkflowDefinition,
                    loop_iterations: int = 1,
                    choice: str = "left") -> dict[str, Responder]:
    """Responders that drive any generated workflow to completion.

    * every plain field gets a deterministic payload;
    * a field named ``verdict`` (the loop guard of
      :func:`loop_definition`) answers ``"again"`` until the activity's
      iteration reaches *loop_iterations*, then ``"done"``;
    * the routing fields of :func:`random_definition` choices answer
      *choice*.
    """
    responders: dict[str, Responder] = {}
    for activity in definition.activities.values():

        def respond(context: ActivityContext,
                    _names=tuple(activity.response_names)) -> dict[str, str]:
            values: dict[str, str] = {}
            for name in _names:
                if name == "verdict":
                    values[name] = ("done" if context.iteration
                                    >= loop_iterations else "again")
                elif context.definition.activity(
                        context.activity_id).split.value == "xor":
                    values[name] = choice
                else:
                    values[name] = (f"payload of {name} from "
                                    f"{context.activity_id}"
                                    f"#{context.iteration}")
            return values

        responders[activity.activity_id] = respond
    return responders
