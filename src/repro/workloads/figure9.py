"""The two experimental workflows of the paper (Fig. 9).

Figure 9A: five activities with "representative flow control mechanisms
such as sequence, loop, split, and join"::

    Initial ─▶ A ─▶ AND-split ─▶ B1 ─▶ AND-join ─▶ C ─▶ D ──▶ Accept(End)
               ▲             └▶ B2 ─▶              │
               └────── "Attachment is insufficient" ┘ (loop back)

Figure 9B is the *same* process executed under the advanced operational
model (through a TFC server, with timestamps).

The experiment in Table 1/2 runs the process twice around the loop:
the first decision is "Attachment is insufficient" (loop back to A),
the second is "Accept" (terminate).  That yields exactly ten activity
executions — the ten measured rows of each table.
"""

from __future__ import annotations

from ..core.aea import ActivityContext, Responder
from ..model.builder import WorkflowBuilder
from ..model.controlflow import END
from ..model.definition import WorkflowDefinition

__all__ = [
    "PARTICIPANTS",
    "figure_9a_definition",
    "figure_9b_definition",
    "figure9_responders",
]

#: Default participant identities for the five activities.
PARTICIPANTS = {
    "A": "submitter@acme.example",
    "B1": "reviewer1@acme.example",
    "B2": "reviewer2@partner.example",
    "C": "consolidator@partner.example",
    "D": "approver@megacorp.example",
}

#: The designer who signs the initial document.
DESIGNER = "designer@acme.example"


def figure_9a_definition(
    participants: dict[str, str] | None = None,
    designer: str = DESIGNER,
) -> WorkflowDefinition:
    """Build the Figure 9A workflow definition."""
    who = dict(PARTICIPANTS)
    if participants:
        who.update(participants)
    builder = (
        WorkflowBuilder(
            "figure-9a", designer=designer,
            description="Five-activity review workflow with sequence, "
                        "AND-split/join and a loop (paper Fig. 9A)",
        )
        .activity("A", who["A"], name="Submit application",
                  responses=["attachment"], split="and", join="xor")
        .activity("B1", who["B1"], name="Technical review",
                  requests=["attachment"], responses=["review1"])
        .activity("B2", who["B2"], name="Financial review",
                  requests=["attachment"], responses=["review2"])
        .activity("C", who["C"], name="Consolidate reviews", join="and",
                  requests=["review1", "review2"], responses=["summary"])
        .activity("D", who["D"], name="Approve", split="xor",
                  requests=["summary"], responses=["decision"])
        .transition("A", "B1").transition("A", "B2")
        .transition("B1", "C").transition("B2", "C")
        .transition("C", "D")
        .transition("D", END, condition="decision == 'accept'")
        .transition("D", "A", priority=1)   # "Attachment is insufficient"
    )
    return builder.build()


def figure_9b_definition(
    participants: dict[str, str] | None = None,
    designer: str = DESIGNER,
) -> WorkflowDefinition:
    """Figure 9B: the same process, forced through the advanced model."""
    definition = figure_9a_definition(participants, designer)
    definition.process_name = "figure-9b"
    definition.policy.require_timestamps = True
    return definition


def figure9_responders(loop_iterations: int = 1) -> dict[str, Responder]:
    """Responders reproducing the paper's two-pass execution.

    Activity ``D`` answers "Attachment is insufficient" for the first
    *loop_iterations* passes and "accept" afterwards, so the process
    executes ``loop_iterations + 1`` rounds of all five activities.
    """

    def submit(context: ActivityContext) -> dict[str, str]:
        return {"attachment": f"application-form-v{context.iteration + 1} "
                              f"with supporting documents"}

    def review1(context: ActivityContext) -> dict[str, str]:
        return {"review1": f"technical review of "
                           f"{context.requests['attachment'][:20]}…: adequate"}

    def review2(context: ActivityContext) -> dict[str, str]:
        return {"review2": "financial review: budget plausible"}

    def consolidate(context: ActivityContext) -> dict[str, str]:
        return {"summary": f"{context.requests['review1']} / "
                           f"{context.requests['review2']}"}

    def approve(context: ActivityContext) -> dict[str, str]:
        if context.iteration < loop_iterations:
            return {"decision": "attachment is insufficient"}
        return {"decision": "accept"}

    return {
        "A": submit,
        "B1": review1,
        "B2": review2,
        "C": consolidate,
        "D": approve,
    }
