"""The flow-information-concealment scenario of Fig. 4 (Chinese wall).

Peter inputs ``X`` (confidential — readable by Amy only, per [21]'s
conflict-of-interest requirement).  Tony inputs ``Y`` and the control
flow then branches on ``Func(X)`` — but Tony must not see ``X``, so he
*cannot* route the document, and he cannot element-wise encrypt ``Y``
either, because ``Y`` goes to John when ``Func(X)`` holds and to Mary
otherwise.

The basic operational model provably fails on this workflow (the AEA
raises :class:`~repro.errors.PolicyError`); the advanced model routes
through the TFC server, which decrypts Tony's bundle, evaluates
``Func(X)``, re-encrypts ``Y`` for exactly the right reader, and
forwards the document.
"""

from __future__ import annotations

from ..core.aea import ActivityContext, Responder
from ..model.builder import WorkflowBuilder
from ..model.controlflow import END
from ..model.definition import WorkflowDefinition

__all__ = ["PARTICIPANTS", "DESIGNER", "GUARD",
           "chinese_wall_definition", "chinese_wall_responders"]

PARTICIPANTS = {
    "A1": "peter@consultalot.example",
    "A2": "tony@consultalot.example",
    "A4": "john@bank-a.example",
    "A5": "mary@bank-b.example",
    "A6": "amy@audit.example",
}

DESIGNER = "designer@consultalot.example"

#: ``Func(X)``: route to John when the deal targets Bank A.
GUARD = "X == 'bank-a-engagement'"


def chinese_wall_definition(
    participants: dict[str, str] | None = None,
    designer: str = DESIGNER,
) -> WorkflowDefinition:
    """Build the Fig. 4 workflow with its conditional security policy."""
    who = dict(PARTICIPANTS)
    if participants:
        who.update(participants)
    peter, tony = who["A1"], who["A2"]
    john, mary, amy = who["A4"], who["A5"], who["A6"]
    builder = (
        WorkflowBuilder(
            "chinese-wall", designer=designer,
            description="Fig. 4: conditional routing concealed from the "
                        "forwarding participant",
        )
        .activity("A1", peter, name="Input engagement target",
                  responses=["X"])
        .activity("A2", tony, name="Input proposal",
                  responses=["Y"], split="xor")
        .activity("A4", john, name="Bank A assessment",
                  requests=["Y"], responses=["john_verdict"])
        .activity("A5", mary, name="Bank B assessment",
                  requests=["Y"], responses=["mary_verdict"])
        .activity("A6", amy, name="Compliance audit", join="xor",
                  requests=["X"], responses=["audit"])
        .transition("A1", "A2")
        .transition("A2", "A4", condition=GUARD)
        .transition("A2", "A5", priority=1)
        .transition("A4", "A6").transition("A5", "A6")
        .transition("A6", END)
        # X is for Amy's eyes only (plus its producer, Peter).
        .readers("A1", "X", [amy])
        # Y goes to John *or* Mary depending on Func(X) — which the
        # producing participant (Tony) cannot evaluate.
        .readers("A2", "Y", [john], condition=GUARD)
        .readers("A2", "Y", [mary])
        # Tony must not learn the routing decision.
        .conceal_flow_from(tony)
    )
    return builder.build()


def chinese_wall_responders(target: str = "bank-a-engagement",
                            ) -> dict[str, Responder]:
    """Responders; *target* selects the branch (``Func(X)`` truth value)."""

    def peter(context: ActivityContext) -> dict[str, str]:
        return {"X": target}

    def tony(context: ActivityContext) -> dict[str, str]:
        return {"Y": "proposal: restructure credit portfolio"}

    def john(context: ActivityContext) -> dict[str, str]:
        return {"john_verdict": f"bank-a view on {context.requests['Y']!r}: "
                                f"viable"}

    def mary(context: ActivityContext) -> dict[str, str]:
        return {"mary_verdict": f"bank-b view on {context.requests['Y']!r}: "
                                f"viable"}

    def amy(context: ActivityContext) -> dict[str, str]:
        return {"audit": f"engagement {context.requests['X']!r} handled "
                         f"without conflict of interest"}

    return {"A1": peter, "A2": tony, "A4": john, "A5": mary, "A6": amy}
