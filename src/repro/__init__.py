"""DRA4WfMS — a nonrepudiatable, scalable, engine-less workflow system.

Reproduction of *"A Framework for Nonrepudiatable and Scalable
Cross-Enterprise Workflow Management Systems in the Cloud"*
(Hwang, Hsiao, Kao, Lin — IPDPSW 2012).

Quick tour
----------

>>> from repro import (WorkflowBuilder, build_world, build_initial_document,
...                    InMemoryRuntime, verify_document)
>>> wf = (WorkflowBuilder("demo", designer="dsgn@acme.example")
...       .activity("ask", "alice@acme.example", responses=["question"])
...       .activity("answer", "bob@megacorp.example",
...                 requests=["question"], responses=["reply"])
...       .transition("ask", "answer")
...       .build())
>>> world = build_world(["dsgn@acme.example", "alice@acme.example",
...                      "bob@megacorp.example"])
>>> doc = build_initial_document(wf, world.keypair("dsgn@acme.example"))
>>> runtime = InMemoryRuntime(world.directory, world.keypairs)
>>> trace = runtime.run(doc, wf, {
...     "ask": {"question": "ship it?"},
...     "answer": {"reply": "yes"},
... })
>>> bool(verify_document(trace.final_document, world.directory))
True

Packages
--------
``repro.crypto``
    From-scratch RSA/AES/SHA-256 plus a fast OpenSSL-backed backend,
    key pairs, and a minimal PKI.
``repro.xmlsec``
    Canonicalization, multi-reference XML signatures (the cascade), and
    element-wise encryption.
``repro.model``
    Workflow definitions: activities, AND/XOR control flow, loops,
    guard expressions, security policies, XPDL-like XML.
``repro.document``
    The DRA4WfMS document, CERs, Algorithm 1 (nonrepudiation scopes),
    and whole-document verification.
``repro.core``
    The AEA and TFC server (basic & advanced operational models), plus
    the in-memory orchestrator and monitoring.
``repro.cloud``
    The simulated cloud: HDFS, HBase, document pool, portal servers,
    notifications, MapReduce analytics.
``repro.baselines``
    The engine-based centralized and distributed WfMSs the paper
    argues against.
``repro.security``
    The threat model and executable attack matrix.
``repro.workloads``
    The paper's Fig. 9 and Fig. 4 processes and synthetic generators.
"""

from .core.aea import ActivityContext, ActivityExecutionAgent, AeaResult
from .core.monitor import WorkflowMonitor
from .core.runtime import ExecutionTrace, InMemoryRuntime, StepTrace
from .core.tfc import TfcServer
from .crypto.backend import PureBackend, default_backend, set_default_backend
from .crypto.keys import KeyPair
from .crypto.pki import CertificateAuthority, KeyDirectory
from .document.builder import build_initial_document
from .document.document import Dra4wfmsDocument, new_process_id
from .document.nonrepudiation import (
    covers_whole_document,
    nonrepudiation_scope,
)
from .document.verify import VerificationReport, verify_document
from .errors import ReproError
from .model.builder import WorkflowBuilder
from .model.controlflow import END
from .model.definition import WorkflowDefinition
from .workloads.participants import World, build_world

__version__ = "1.0.0"

__all__ = [
    "ActivityContext",
    "ActivityExecutionAgent",
    "AeaResult",
    "CertificateAuthority",
    "Dra4wfmsDocument",
    "END",
    "ExecutionTrace",
    "InMemoryRuntime",
    "KeyDirectory",
    "KeyPair",
    "PureBackend",
    "ReproError",
    "StepTrace",
    "TfcServer",
    "VerificationReport",
    "WorkflowBuilder",
    "WorkflowDefinition",
    "WorkflowMonitor",
    "World",
    "build_initial_document",
    "build_world",
    "covers_whole_document",
    "default_backend",
    "new_process_id",
    "nonrepudiation_scope",
    "set_default_backend",
    "verify_document",
    "__version__",
]
