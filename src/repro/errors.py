"""Exception hierarchy for the DRA4WfMS reproduction.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  The hierarchy mirrors the
architectural layers: crypto substrate, XML security, workflow model,
document handling, runtime, and the simulated cloud substrate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Crypto substrate
# ---------------------------------------------------------------------------


class CryptoError(ReproError):
    """Base class for failures in the cryptographic substrate."""


class KeyError_(CryptoError):
    """A key is malformed, of the wrong type, or too small for an operation."""


class SignatureError(CryptoError):
    """A digital signature failed to verify."""


class DecryptionError(CryptoError):
    """Ciphertext could not be decrypted (bad key, padding, or MAC)."""


class CertificateError(CryptoError):
    """An identity certificate is invalid, expired, or untrusted."""


# ---------------------------------------------------------------------------
# XML security layer
# ---------------------------------------------------------------------------


class XmlSecError(ReproError):
    """Base class for XML-security failures."""


class CanonicalizationError(XmlSecError):
    """The XML tree could not be canonicalized."""


class XmlSignatureError(XmlSecError, SignatureError):
    """An XML signature structure is malformed or fails verification."""


class XmlEncryptionError(XmlSecError):
    """An XML encryption structure is malformed or cannot be processed."""


# ---------------------------------------------------------------------------
# Workflow model
# ---------------------------------------------------------------------------


class ModelError(ReproError):
    """Base class for workflow-definition errors."""


class DefinitionError(ModelError):
    """A workflow definition is structurally invalid."""


class ExpressionError(ModelError):
    """A guard expression is malformed or references unknown variables."""


class PolicyError(ModelError):
    """A security policy is inconsistent with the workflow definition."""


# ---------------------------------------------------------------------------
# DRA4WfMS documents
# ---------------------------------------------------------------------------


class DocumentError(ReproError):
    """Base class for DRA4WfMS document errors."""


class DocumentFormatError(DocumentError):
    """A DRA4WfMS document does not follow the required structure."""


class VerificationError(DocumentError):
    """Document verification failed (tampering, bad cascade, bad designer sig)."""


class TamperDetected(VerificationError):
    """Cryptographic evidence that the document was illegally modified."""


class ReplayDetected(VerificationError):
    """A document with an already-used process id was presented again."""


class DeltaError(DocumentError):
    """Base class for delta-routing (manifest/chunk) errors."""


class DeltaMismatch(DeltaError):
    """A reassembled document does not match its manifest digest."""


class ArchiveError(DocumentError):
    """An archival bundle is malformed or fails cold verification."""


# ---------------------------------------------------------------------------
# Runtime (AEA / TFC / router)
# ---------------------------------------------------------------------------


class RuntimeFault(ReproError):
    """Base class for runtime execution errors."""


class AuthorizationError(RuntimeFault):
    """The participant is not the designated executor of the activity."""


class RoutingError(RuntimeFault):
    """Control flow cannot be evaluated or leads nowhere."""


class JoinNotReady(RoutingError):
    """An AND-join was attempted before all incoming branches arrived."""


# ---------------------------------------------------------------------------
# Cloud substrate
# ---------------------------------------------------------------------------


class CloudError(ReproError):
    """Base class for simulated cloud substrate errors."""


class StorageError(CloudError):
    """The simulated HDFS/HBase layer could not complete an operation."""


class RegionError(StorageError):
    """No region (or region server) can serve the requested row."""


class PortalError(CloudError):
    """A portal server rejected the request (auth, missing doc, ...)."""


class DeltaFallbackRequired(PortalError):
    """A delta request cannot be served (unknown manifest or missing
    chunks); the client must fall back to a full-document transfer."""


class FleetError(CloudError):
    """The fleet execution fabric hit an unrecoverable condition."""
