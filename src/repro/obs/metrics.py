"""A small deterministic metrics registry (counters, gauges, histograms).

Everything here is plain Python state with a JSON-safe snapshot — no
background threads, no wall clocks — so a registry filled from simulated
quantities snapshots byte-identically run to run.  Metrics are keyed by
``name`` plus optional labels; the canonical key is rendered
Prometheus-style (``wire_bytes{direction=to_cloud}``) with labels sorted
by name, so snapshot ordering never depends on creation order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "DEFAULT_BUCKETS", "metric_key"]

#: Histogram bucket upper bounds (seconds-ish scale; callers may pass
#: their own).  The catch-all ``+Inf`` bucket is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)


def metric_key(name: str, labels: dict[str, str]) -> str:
    """Canonical metric key: ``name{k1=v1,k2=v2}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


@dataclass
class Counter:
    """A monotonically increasing integer-or-float count."""

    value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must be non-negative — counters only go up)."""
        if amount < 0:
            raise ValueError("counters cannot decrease")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (queue depth, hit rate, utilization)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = float(value)


@dataclass
class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    Buckets are *non-cumulative* per-bound counts plus an implicit
    ``+Inf`` overflow bucket, which keeps the snapshot human-readable.
    """

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    count: int = 0
    total: float = 0.0
    min_value: float | None = None
    max_value: float | None = None
    bucket_counts: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError("histogram buckets must be sorted ascending")
        if not self.bucket_counts:
            self.bucket_counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def to_dict(self) -> dict[str, object]:
        """JSON-safe snapshot of this histogram."""
        labels = [str(b) for b in self.buckets] + ["+Inf"]
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": round(self.min_value, 9) if self.count else 0.0,
            "max": round(self.max_value, 9) if self.count else 0.0,
            "buckets": dict(zip(labels, self.bucket_counts)),
        }


class MetricsRegistry:
    """Get-or-create home for named metrics, with one snapshot API."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- get-or-create ------------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter for ``name`` + *labels* (created on first use)."""
        key = metric_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge for ``name`` + *labels* (created on first use)."""
        key = metric_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str,
                  buckets: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        """The histogram for ``name`` + *labels* (created on first use)."""
        key = metric_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram(buckets=buckets)
        return metric

    # -- snapshot -----------------------------------------------------------

    def snapshot(self) -> dict[str, object]:
        """JSON-safe snapshot of every metric, keys sorted.

        Counter values are emitted as ints when they are whole numbers
        (byte and event counts read naturally); gauges round to
        nanoseconds like the rest of the reporting layer.
        """
        counters = {}
        for key in sorted(self._counters):
            value = self._counters[key].value
            counters[key] = (int(value) if float(value).is_integer()
                             else round(value, 9))
        return {
            "counters": counters,
            "gauges": {key: round(self._gauges[key].value, 9)
                       for key in sorted(self._gauges)},
            "histograms": {key: self._histograms[key].to_dict()
                           for key in sorted(self._histograms)},
        }
