"""Trace exporters: Chrome trace-event JSON, folded stacks, summaries.

The Chrome trace-event form loads directly in Perfetto
(https://ui.perfetto.dev → *Open trace file*) and in ``chrome://tracing``:
one process, one thread track per traced instance, ``B``/``E`` pairs
for spans and ``X`` complete events for the charge leaves.  Timestamps
are the tracer's deterministic microsecond cursor, so a trace file is a
reproducible artifact — the determinism tests compare exported bytes.

The folded-stack form (``span;span;leaf  microseconds`` per line) feeds
flamegraph tooling (e.g. ``flamegraph.pl`` or speedscope's folded
importer) and doubles as a grep-able text profile.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable

from .tracer import ChargeRecord, SpanRecord, Tracer

__all__ = ["to_chrome_trace", "write_chrome_trace", "to_folded_stacks",
           "validate_chrome_trace", "summarize_chrome_trace"]

#: Schema tag embedded in exported traces (bump on breaking changes).
TRACE_SCHEMA = 1


def _ordered_events(tracer: Tracer) -> list[tuple[int, str, object]]:
    """All records as ``(seq, kind, record)`` in chronological order."""
    items: list[tuple[int, str, object]] = []
    for span in tracer.spans:
        items.append((span.seq_open, "open", span))
        items.append((span.seq_close, "close", span))
    for charge in tracer.charges:
        items.append((charge.seq, "leaf", charge))
    items.sort(key=lambda item: item[0])
    return items


def to_chrome_trace(tracer: Tracer) -> dict[str, object]:
    """Render a tracer as a Chrome trace-event JSON object."""
    events: list[dict[str, object]] = []
    tids: dict[str, int] = {"": 0}
    ordered = _ordered_events(tracer)

    def tid_of(instance: str) -> int:
        tid = tids.get(instance)
        if tid is None:
            tid = tids[instance] = len(tids)
        return tid

    for _, kind, record in ordered:
        if kind == "open":
            span = record  # type: SpanRecord
            assert isinstance(span, SpanRecord)
            args: dict[str, object] = {}
            if span.instance:
                args["instance"] = span.instance
            if span.hop:
                args["hop"] = span.hop
            if span.wall_us is not None:
                args["wall_us"] = span.wall_us
            events.append({
                "ph": "B", "name": span.name,
                "cat": span.component or "misc",
                "ts": span.start_us, "pid": 1,
                "tid": tid_of(span.instance), "args": args,
            })
        elif kind == "close":
            span = record
            assert isinstance(span, SpanRecord)
            events.append({
                "ph": "E", "name": span.name,
                "cat": span.component or "misc",
                "ts": span.end_us, "pid": 1,
                "tid": tid_of(span.instance),
            })
        else:
            charge = record
            assert isinstance(charge, ChargeRecord)
            event: dict[str, object] = {
                "ph": "X" if charge.phase == "X" else "i",
                "name": charge.name,
                "cat": charge.component or "misc",
                "ts": charge.ts_us, "pid": 1,
                "tid": tid_of(charge.instance),
            }
            if charge.phase == "X":
                event["dur"] = charge.dur_us
            if charge.detail:
                event["args"] = {"detail": charge.detail}
            events.append(event)

    metadata: list[dict[str, object]] = [{
        "ph": "M", "name": "process_name", "pid": 1, "tid": 0,
        "args": {"name": "dra4wfms"},
    }]
    for instance, tid in tids.items():
        metadata.append({
            "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
            "args": {"name": instance or "(shared)"},
        })
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs", "schema": TRACE_SCHEMA},
    }


def write_chrome_trace(tracer: Tracer, path: str | pathlib.Path) -> int:
    """Serialize :func:`to_chrome_trace` to *path*; return byte count.

    Canonical form — sorted keys, compact separators, trailing newline —
    so same-seed traces are byte-identical files.
    """
    text = json.dumps(to_chrome_trace(tracer), sort_keys=True,
                      separators=(",", ":")) + "\n"
    data = text.encode("utf-8")
    pathlib.Path(path).write_bytes(data)
    return len(data)


def to_folded_stacks(tracer: Tracer) -> str:
    """Flamegraph-style folded stacks: ``span;span;leaf  dur_us``.

    Only charge leaves carry weight (spans are pure structure), so the
    folded totals sum to the tracer's cursor exactly.  Lines are sorted
    for deterministic output.
    """
    folded: dict[str, int] = {}
    stack: list[str] = []
    for _, kind, record in _ordered_events(tracer):
        if kind == "open":
            assert isinstance(record, SpanRecord)
            stack.append(record.name)
        elif kind == "close":
            stack.pop()
        else:
            assert isinstance(record, ChargeRecord)
            if record.phase != "X" or record.dur_us <= 0:
                continue
            path = ";".join([*stack, record.name])
            folded[path] = folded.get(path, 0) + record.dur_us
    return "".join(f"{path} {us}\n" for path, us in sorted(folded.items()))


def validate_chrome_trace(payload: dict[str, object]) -> dict[str, int]:
    """Structural validation of an exported (or parsed) Chrome trace.

    Checks the trace-event contract the CI ``obs-smoke`` job relies on:
    required keys per event, globally non-decreasing timestamps,
    strictly matched ``B``/``E`` pairs per ``(pid, tid)`` (LIFO, names
    agree, end ≥ begin), and non-negative ``X`` durations.  Returns
    summary counts; raises :class:`ValueError` on any violation.
    """
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise ValueError("trace has no traceEvents list")
    last_ts: int | None = None
    stacks: dict[tuple[object, object], list[dict[str, object]]] = {}
    counts = {"spans": 0, "leaves": 0, "instants": 0, "metadata": 0}
    for i, event in enumerate(events):
        phase = event.get("ph")
        if phase == "M":
            counts["metadata"] += 1
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event {i} missing required key {key!r}")
        ts = event["ts"]
        if not isinstance(ts, int) or ts < 0:
            raise ValueError(f"event {i} has non-integer ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            raise ValueError(
                f"event {i} goes backwards in time ({ts} < {last_ts})"
            )
        last_ts = ts
        track = (event["pid"], event["tid"])
        if phase == "B":
            stacks.setdefault(track, []).append(event)
        elif phase == "E":
            stack = stacks.get(track) or []
            if not stack:
                raise ValueError(f"event {i}: E without matching B")
            begin = stack.pop()
            if begin["name"] != event["name"]:
                raise ValueError(
                    f"event {i}: E {event['name']!r} closes B "
                    f"{begin['name']!r}"
                )
            if event["ts"] < begin["ts"]:
                raise ValueError(f"event {i}: span ends before it starts")
            counts["spans"] += 1
        elif phase == "X":
            if not isinstance(event.get("dur"), int) or event["dur"] < 0:
                raise ValueError(f"event {i}: X needs a non-negative dur")
            counts["leaves"] += 1
        elif phase == "i":
            counts["instants"] += 1
        else:
            raise ValueError(f"event {i}: unknown phase {phase!r}")
    dangling = {track: stack for track, stack in stacks.items() if stack}
    if dangling:
        raise ValueError(f"unclosed B events on tracks {sorted(dangling)}")
    return counts


def summarize_chrome_trace(payload: dict[str, object]
                           ) -> list[dict[str, object]]:
    """Per-component rollup of a Chrome trace (``repro trace-report``).

    One row per component (``cat``): span count, charge-leaf count,
    summed leaf microseconds and the share of the total, sorted by
    sim-time descending (ties by name so output is deterministic).
    """
    events: Iterable[dict[str, object]] = payload.get("traceEvents", [])  # type: ignore[assignment]
    spans: dict[str, int] = {}
    leaves: dict[str, int] = {}
    sim_us: dict[str, int] = {}
    for event in events:
        cat = str(event.get("cat", "misc"))
        phase = event.get("ph")
        if phase == "B":
            spans[cat] = spans.get(cat, 0) + 1
        elif phase == "X":
            leaves[cat] = leaves.get(cat, 0) + 1
            sim_us[cat] = sim_us.get(cat, 0) + int(event.get("dur", 0))  # type: ignore[arg-type]
    total = sum(sim_us.values())
    components = sorted(set(spans) | set(leaves) | set(sim_us))
    rows = [{
        "component": cat,
        "spans": spans.get(cat, 0),
        "leaves": leaves.get(cat, 0),
        "sim_us": sim_us.get(cat, 0),
        "share": (round(sim_us.get(cat, 0) / total, 6) if total else 0.0),
    } for cat in components]
    rows.sort(key=lambda row: (-int(row["sim_us"]), str(row["component"])))
    return rows
