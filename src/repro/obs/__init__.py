"""Observability: deterministic span tracing + a metrics registry.

The DRA4WfMS reproduction reports *aggregates* everywhere (FleetReport
percentiles, CostCapture sums); this package adds the per-event view:
follow one process instance hop by hop through portal → TFC →
HBase/HDFS → notify → crypto and see where the simulated budget goes.

Three pieces:

* :class:`Tracer` — nested spans keyed by ``(instance, hop,
  component)``.  Span time comes from the tagged
  :class:`~repro.cloud.simclock.SimClock` charges (rounded to integer
  microseconds), so the same seed produces a byte-identical trace;
  host wall-time is an optional extra, never part of the deterministic
  output.
* :class:`MetricsRegistry` — counters / gauges / histograms
  (wire bytes, dedup hits, verify-cache hit rate, queue depths, …)
  with a JSON-safe :meth:`~MetricsRegistry.snapshot`.
* exporters — Chrome trace-event JSON (loadable in Perfetto), a
  flamegraph-style folded-stack text form, and a per-component summary
  table (``repro trace-report``).

The layer is a strict no-op by default: nothing in the stack creates a
tracer unless asked, and with tracing off every report stays
byte-identical.  See ``docs/OBSERVABILITY.md``.
"""

from .export import (
    summarize_chrome_trace,
    to_chrome_trace,
    to_folded_stacks,
    validate_chrome_trace,
    write_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import ChargeRecord, SpanRecord, Tracer, capture_totals_us, microseconds

__all__ = [
    "ChargeRecord",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "capture_totals_us",
    "microseconds",
    "summarize_chrome_trace",
    "to_chrome_trace",
    "to_folded_stacks",
    "validate_chrome_trace",
    "write_chrome_trace",
]
