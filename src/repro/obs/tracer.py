"""Deterministic nested-span tracer for the simulated cloud stack.

Time model — **charge time, not wall time**: the tracer keeps one
monotone cursor in integer microseconds.  Every tagged
:class:`~repro.cloud.simclock.SimClock` charge (and every explicit
:meth:`Tracer.leaf` cost, e.g. the fleet's deterministic crypto charges)
advances the cursor and lands as a leaf event under the innermost open
span; spans start and end at the cursor.  Because the charge stream is
a pure function of the seed, two same-seed runs produce byte-identical
traces — and per-tag microsecond totals equal the corresponding
:class:`~repro.cloud.simclock.CostCapture` sums exactly (same per-charge
rounding; see :func:`capture_totals_us`).

Component attribution is two-level:

* a leaf's **name** is the raw charge tag (``portal``/``pool``/
  ``notify``/``misc`` — what :class:`CostCapture` buckets by);
* its **component** is the innermost open span's component when one is
  set (so HBase's ``pool``-tagged charges resolve to ``hbase`` inside a
  ``SimHBase`` span, HDFS's to ``hdfs``), falling back to the tag.

Spans inherit ``instance``/``hop``/``component`` context from their
parent, so a ``portal.submit`` span opened deep inside a fleet hop still
knows which instance and activity it serves.

Host wall-time is opt-in (``Tracer(host_time=True)``): spans then also
record their ``perf_counter`` duration, which is useful interactively
and deliberately excluded from determinism comparisons.

Cross-process merging: a pool worker's tracer serializes to a plain
:meth:`payload` (tuples only) and the parent re-bases it with
:meth:`absorb`, mirroring how worker charges merge through
:meth:`~repro.cloud.simclock.CostCapture.merge`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..cloud.simclock import CostCapture
    from .metrics import MetricsRegistry

__all__ = ["Tracer", "SpanRecord", "ChargeRecord", "microseconds",
           "capture_totals_us"]


def microseconds(seconds: float) -> int:
    """Integer microseconds of one charge — THE rounding used everywhere."""
    return int(round(float(seconds) * 1_000_000))


def capture_totals_us(capture: "CostCapture") -> dict[str, int]:
    """Per-tag microsecond totals of a capture, tracer-compatible.

    Rounds every charge individually (exactly as the tracer does) before
    summing, so a tracer that observed the same charge stream reports
    equal :meth:`Tracer.tag_totals` to the microsecond.
    """
    out: dict[str, int] = {}
    for tag, seconds in capture.charges:
        out[tag] = out.get(tag, 0) + microseconds(seconds)
    return out


@dataclass
class ChargeRecord:
    """One leaf event: a charge (``X``) or an instant marker (``i``)."""

    phase: str  # "X" (has duration) or "i" (instant marker)
    name: str
    component: str
    instance: str
    hop: str
    ts_us: int
    dur_us: int
    seq: int
    detail: str = ""

    def to_tuple(self) -> tuple:
        return (self.phase, self.name, self.component, self.instance,
                self.hop, self.ts_us, self.dur_us, self.seq, self.detail)

    @classmethod
    def from_tuple(cls, data: tuple) -> "ChargeRecord":
        return cls(*data)


@dataclass
class SpanRecord:
    """One closed span: ``[start_us, end_us]`` encloses its children."""

    name: str
    component: str
    instance: str
    hop: str
    start_us: int
    end_us: int
    seq_open: int
    seq_close: int
    #: Host wall-time duration; ``None`` unless ``host_time`` tracing.
    wall_us: int | None = None

    @property
    def dur_us(self) -> int:
        return self.end_us - self.start_us

    def to_tuple(self) -> tuple:
        return (self.name, self.component, self.instance, self.hop,
                self.start_us, self.end_us, self.seq_open, self.seq_close,
                self.wall_us)

    @classmethod
    def from_tuple(cls, data: tuple) -> "SpanRecord":
        return cls(*data)


@dataclass
class _OpenSpan:
    name: str
    component: str  # effective (own, or inherited from the parent)
    instance: str
    hop: str
    start_us: int
    seq_open: int
    wall_start: float | None


class Tracer:
    """Collects spans + charge leaves on one deterministic cursor.

    ``collect=False`` turns the tracer into a pure metrics tap: charges
    still accumulate per-tag/per-component totals (and feed *metrics*),
    but no event objects are retained — the fleet uses this for
    metrics-only runs so both paths share one code path.
    """

    def __init__(self, host_time: bool = False,
                 metrics: "MetricsRegistry | None" = None,
                 collect: bool = True) -> None:
        self.host_time = host_time
        self.metrics = metrics
        self.collect = collect
        self._seq = 0
        self._now_us = 0
        self._stack: list[_OpenSpan] = []
        self._spans: list[SpanRecord] = []
        self._charges: list[ChargeRecord] = []
        self._tag_us: dict[str, int] = {}
        self._component_us: dict[str, int] = {}

    # -- cursor / totals ----------------------------------------------------

    @property
    def now_us(self) -> int:
        """Current cursor position (total charged microseconds)."""
        return self._now_us

    @property
    def spans(self) -> list[SpanRecord]:
        """Closed spans, in close order."""
        return list(self._spans)

    @property
    def charges(self) -> list[ChargeRecord]:
        """Charge leaves + instant markers, in record order."""
        return list(self._charges)

    def tag_totals(self) -> dict[str, int]:
        """Microseconds per raw charge tag (CostCapture-compatible)."""
        return dict(sorted(self._tag_us.items()))

    def component_totals(self) -> dict[str, int]:
        """Microseconds per resolved component (hbase/hdfs split out)."""
        return dict(sorted(self._component_us.items()))

    # -- spans --------------------------------------------------------------

    @contextmanager
    def span(self, name: str, component: str | None = None,
             instance: str | None = None,
             hop: str | None = None) -> Iterator[_OpenSpan]:
        """Open a nested span; closes (and records) on block exit.

        Unset ``component``/``instance``/``hop`` inherit from the
        innermost open span, so call sites deep in the cloud substrate
        need no plumbing to stay attributable.
        """
        parent = self._stack[-1] if self._stack else None
        self._seq += 1
        open_span = _OpenSpan(
            name=name,
            component=component or (parent.component if parent else ""),
            instance=(instance if instance is not None
                      else (parent.instance if parent else "")),
            hop=hop if hop is not None else (parent.hop if parent else ""),
            start_us=self._now_us,
            seq_open=self._seq,
            wall_start=time.perf_counter() if self.host_time else None,
        )
        self._stack.append(open_span)
        try:
            yield open_span
        finally:
            popped = self._stack.pop()
            self._seq += 1
            if self.collect:
                wall_us = None
                if popped.wall_start is not None:
                    wall_us = int(
                        (time.perf_counter() - popped.wall_start) * 1e6
                    )
                self._spans.append(SpanRecord(
                    name=popped.name,
                    component=popped.component,
                    instance=popped.instance,
                    hop=popped.hop,
                    start_us=popped.start_us,
                    end_us=self._now_us,
                    seq_open=popped.seq_open,
                    seq_close=self._seq,
                    wall_us=wall_us,
                ))

    # -- charges ------------------------------------------------------------

    def on_charge(self, tag: str, seconds: float) -> None:
        """SimClock hook: one tagged charge lands under the open span."""
        self._charge(tag, seconds, component=None)

    def leaf(self, name: str, seconds: float,
             component: str | None = None) -> None:
        """Record an explicit deterministic cost (e.g. a crypto charge).

        Advances the cursor exactly like a clock charge; *name* becomes
        the leaf's tag (kept out of the CostCapture tags on purpose —
        these are costs the clock never saw).
        """
        self._charge(name, seconds, component=component)

    def instant(self, name: str, component: str | None = None,
                detail: str = "") -> None:
        """Zero-duration marker (station visits, cache events, …)."""
        if not self.collect:
            return
        top = self._stack[-1] if self._stack else None
        self._seq += 1
        self._charges.append(ChargeRecord(
            phase="i",
            name=name,
            component=component or (top.component if top else name),
            instance=top.instance if top else "",
            hop=top.hop if top else "",
            ts_us=self._now_us,
            dur_us=0,
            seq=self._seq,
            detail=detail,
        ))

    def _charge(self, tag: str, seconds: float,
                component: str | None) -> None:
        us = microseconds(seconds)
        top = self._stack[-1] if self._stack else None
        comp = component or (top.component if top and top.component
                             else tag)
        self._tag_us[tag] = self._tag_us.get(tag, 0) + us
        self._component_us[comp] = self._component_us.get(comp, 0) + us
        if self.metrics is not None:
            self.metrics.counter("sim_us_total", component=comp).inc(us)
        if self.collect:
            self._seq += 1
            self._charges.append(ChargeRecord(
                phase="X",
                name=tag,
                component=comp,
                instance=top.instance if top else "",
                hop=top.hop if top else "",
                ts_us=self._now_us,
                dur_us=us,
                seq=self._seq,
            ))
        self._now_us += us

    # -- cross-process merge -------------------------------------------------

    def payload(self) -> dict[str, object]:
        """Picklable snapshot for crossing a process boundary."""
        if self._stack:
            raise RuntimeError(
                f"cannot serialize a tracer with {len(self._stack)} open "
                f"span(s)"
            )
        return {
            "spans": [s.to_tuple() for s in self._spans],
            "charges": [c.to_tuple() for c in self._charges],
            "total_us": self._now_us,
            "max_seq": self._seq,
        }

    def absorb(self, payload: dict[str, object]) -> None:
        """Merge a worker tracer's :meth:`payload`, re-based onto this one.

        Event times shift by the current cursor and sequence numbers by
        the current sequence, so merged worker traces concatenate in the
        order they are absorbed — the span-tree invariants (parents
        enclose children, cursor monotone) are preserved.  Totals and
        any attached metrics accumulate exactly as if the charges had
        happened locally.
        """
        if self._stack:
            raise RuntimeError("cannot absorb into a tracer mid-span")
        ts_base = self._now_us
        seq_base = self._seq
        for data in payload["spans"]:  # type: ignore[union-attr]
            span = SpanRecord.from_tuple(tuple(data))
            span.start_us += ts_base
            span.end_us += ts_base
            span.seq_open += seq_base
            span.seq_close += seq_base
            if self.collect:
                self._spans.append(span)
        for data in payload["charges"]:  # type: ignore[union-attr]
            charge = ChargeRecord.from_tuple(tuple(data))
            charge.ts_us += ts_base
            charge.seq += seq_base
            if charge.phase == "X":
                self._tag_us[charge.name] = (
                    self._tag_us.get(charge.name, 0) + charge.dur_us)
                self._component_us[charge.component] = (
                    self._component_us.get(charge.component, 0)
                    + charge.dur_us)
                if self.metrics is not None:
                    self.metrics.counter(
                        "sim_us_total", component=charge.component,
                    ).inc(charge.dur_us)
            if self.collect:
                self._charges.append(charge)
        self._now_us = ts_base + int(payload["total_us"])  # type: ignore[arg-type]
        self._seq = seq_base + int(payload["max_seq"])  # type: ignore[arg-type]
