"""XML security layer: canonicalization, signatures, element-wise encryption.

This is the reproduction of the paper's XML-security substrate (Apache
Santuario + the Java XML DSig API in the original): deterministic
canonicalization so signatures survive serialization, multi-reference
XML signatures that can reference other signatures (the cascade), and
hybrid element-wise encryption with per-reader key wrapping.
"""

from .canonical import canonicalize, parse_xml, to_bytes
from .digest import b64, digest_element, unb64
from .xmldsig import (
    ALG_PKCS1V15,
    ALG_PSS,
    ID_ATTR,
    Reference,
    XmlSignature,
    find_by_id,
    index_by_id,
    sign_references,
)
from .xmlenc import (
    ALG_CTR_HMAC,
    ALG_GCM,
    ENC_TAG,
    EncryptedValue,
    decrypt_value,
    encrypt_value,
    is_encrypted_data,
    recipients_of,
)

__all__ = [
    "ALG_CTR_HMAC",
    "ALG_GCM",
    "ALG_PKCS1V15",
    "ALG_PSS",
    "ENC_TAG",
    "ID_ATTR",
    "EncryptedValue",
    "Reference",
    "XmlSignature",
    "b64",
    "canonicalize",
    "decrypt_value",
    "digest_element",
    "encrypt_value",
    "find_by_id",
    "index_by_id",
    "is_encrypted_data",
    "parse_xml",
    "recipients_of",
    "sign_references",
    "to_bytes",
    "unb64",
]
