"""Element-wise XML encryption (XML-Enc style).

The paper secures DRA4WfMS documents with *element-wise encryption*
[17,18,22]: each datum is encrypted under exactly the keys of the
participants allowed to read it, so one document can simultaneously
carry Peter's confidential input (readable by Amy only) and Tony's
(readable by John or Mary, decided later by the TFC).

The construction is hybrid:

* a fresh random AES-128 data key per encrypted element;
* the payload sealed with authenticated encryption
  (:meth:`CryptoBackend.seal`), with the element id, logical name and
  recipient list bound as associated data — moving a ciphertext to a
  different element or editing the recipient list breaks decryption;
* one ``<EncryptedKey>`` per authorised reader, wrapping the data key
  under that reader's RSA public key.

.. code-block:: xml

    <EncryptedData Id="enc-A1-X" Name="X" Algorithm="aes128ctr-hmacsha256">
      <KeyInfo>
        <EncryptedKey Recipient="amy@acme"><CipherValue>…</CipherValue></EncryptedKey>
      </KeyInfo>
      <CipherData><CipherValue>…</CipherValue></CipherData>
    </EncryptedData>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from ..crypto.backend import DATA_KEY_BYTES, CryptoBackend, default_backend
from ..crypto.pure.rsa import RsaPrivateKey, RsaPublicKey
from ..errors import XmlEncryptionError
from .digest import b64, unb64

__all__ = [
    "EncryptedValue",
    "encrypt_value",
    "decrypt_value",
    "recipients_of",
    "is_encrypted_data",
]

ENC_TAG = "EncryptedData"

#: Default content-encryption algorithm (encrypt-then-MAC).
ALG_CTR_HMAC = "aes128ctr-hmacsha256"
#: AES-GCM alternative (single-pass AEAD).
ALG_GCM = "aes128gcm"
_SUPPORTED_ALGORITHMS = (ALG_CTR_HMAC, ALG_GCM)


def _aad(element_id: str, name: str, recipients: list[str]) -> bytes:
    """Associated data binding ciphertext to its location and readers."""
    return "\x00".join([element_id, name, *sorted(recipients)]).encode("utf-8")


class EncryptedValue:
    """Wrapper around an ``<EncryptedData>`` element."""

    def __init__(self, element: ET.Element) -> None:
        if element.tag != ENC_TAG:
            raise XmlEncryptionError(
                f"expected <{ENC_TAG}>, got <{element.tag}>"
            )
        self.element = element

    @property
    def element_id(self) -> str:
        """The ``Id`` attribute (signature reference target)."""
        eid = self.element.get("Id")
        if eid is None:
            raise XmlEncryptionError("EncryptedData has no Id")
        return eid

    @property
    def name(self) -> str:
        """Logical field name (e.g. the workflow variable)."""
        return self.element.get("Name", "")

    @property
    def recipients(self) -> list[str]:
        """Identities able to decrypt, sorted."""
        return sorted(
            node.get("Recipient", "")
            for node in self.element.findall("KeyInfo/EncryptedKey")
        )

    def wrapped_key_for(self, identity: str) -> bytes:
        """The RSA-wrapped data key addressed to *identity*."""
        for node in self.element.findall("KeyInfo/EncryptedKey"):
            if node.get("Recipient") == identity:
                cipher_value = node.find("CipherValue")
                if cipher_value is None:
                    raise XmlEncryptionError("EncryptedKey missing CipherValue")
                return unb64(cipher_value.text)
        raise XmlEncryptionError(
            f"{identity!r} is not an authorised reader of "
            f"{self.element_id!r} (readers: {', '.join(self.recipients) or 'none'})"
        )

    @property
    def ciphertext(self) -> bytes:
        """The sealed payload."""
        node = self.element.find("CipherData/CipherValue")
        if node is None:
            raise XmlEncryptionError("EncryptedData missing CipherData")
        return unb64(node.text)

    def decrypt(self, identity: str, private_key: RsaPrivateKey,
                backend: CryptoBackend | None = None) -> bytes:
        """Decrypt the payload as *identity*.

        Raises :class:`XmlEncryptionError` when the identity is not an
        authorised reader or the ciphertext/AAD was tampered with.
        """
        backend = backend or default_backend()
        wrapped = self.wrapped_key_for(identity)
        try:
            data_key = backend.unwrap_key(private_key, wrapped)
        except Exception as exc:
            raise XmlEncryptionError(
                f"cannot unwrap data key for {identity!r}: {exc}"
            ) from exc
        if len(data_key) != DATA_KEY_BYTES:
            raise XmlEncryptionError("unwrapped data key has wrong length")
        algorithm = self.element.get("Algorithm", ALG_CTR_HMAC)
        if algorithm not in _SUPPORTED_ALGORITHMS:
            raise XmlEncryptionError(
                f"unsupported encryption algorithm {algorithm!r}"
            )
        aad = _aad(self.element_id, self.name, self.recipients)
        try:
            if algorithm == ALG_GCM:
                return backend.open_gcm(data_key, self.ciphertext, aad)
            return backend.open_sealed(data_key, self.ciphertext, aad)
        except Exception as exc:
            raise XmlEncryptionError(
                f"payload of {self.element_id!r} fails authentication: {exc}"
            ) from exc


def encrypt_value(element_id: str,
                  name: str,
                  plaintext: bytes,
                  recipients: dict[str, RsaPublicKey],
                  backend: CryptoBackend | None = None,
                  algorithm: str = ALG_CTR_HMAC) -> ET.Element:
    """Encrypt *plaintext* to every key in *recipients*.

    Returns the ``<EncryptedData>`` element.  At least one recipient is
    required — an unreadable ciphertext is always a policy bug.
    *algorithm* selects the content encryption: the default
    encrypt-then-MAC construction or ``aes128gcm``.
    """
    if not recipients:
        raise XmlEncryptionError(
            f"refusing to encrypt {name!r} with an empty recipient set"
        )
    if algorithm not in _SUPPORTED_ALGORITHMS:
        raise XmlEncryptionError(
            f"unsupported encryption algorithm {algorithm!r}"
        )
    backend = backend or default_backend()
    data_key = backend.random(DATA_KEY_BYTES)
    recipient_names = sorted(recipients)

    root = ET.Element(ENC_TAG, {
        "Id": element_id,
        "Name": name,
        "Algorithm": algorithm,
    })
    key_info = ET.SubElement(root, "KeyInfo")
    for identity in recipient_names:
        enc_key = ET.SubElement(key_info, "EncryptedKey",
                                {"Recipient": identity})
        cipher_value = ET.SubElement(enc_key, "CipherValue")
        cipher_value.text = b64(backend.wrap_key(recipients[identity], data_key))
    cipher_data = ET.SubElement(root, "CipherData")
    cipher_value = ET.SubElement(cipher_data, "CipherValue")
    aad = _aad(element_id, name, recipient_names)
    if algorithm == ALG_GCM:
        sealed = backend.seal_gcm(data_key, plaintext, aad)
    else:
        sealed = backend.seal(data_key, plaintext, aad)
    cipher_value.text = b64(sealed)
    return root


def decrypt_value(element: ET.Element, identity: str,
                  private_key: RsaPrivateKey,
                  backend: CryptoBackend | None = None) -> bytes:
    """Convenience wrapper: decrypt an ``<EncryptedData>`` element."""
    return EncryptedValue(element).decrypt(identity, private_key, backend)


def recipients_of(element: ET.Element) -> list[str]:
    """The authorised readers of an ``<EncryptedData>`` element."""
    return EncryptedValue(element).recipients


def is_encrypted_data(element: ET.Element) -> bool:
    """True when *element* is an ``<EncryptedData>`` node."""
    return element.tag == ENC_TAG
