"""Digest helpers for XML signature references."""

from __future__ import annotations

import base64
import binascii
import xml.etree.ElementTree as ET

from ..crypto.backend import CryptoBackend, default_backend
from ..errors import XmlSecError
from .canonical import canonicalize

__all__ = ["digest_element", "b64", "unb64"]


def digest_element(element: ET.Element,
                   backend: CryptoBackend | None = None) -> bytes:
    """SHA-256 digest of the canonical form of *element*."""
    backend = backend or default_backend()
    return backend.digest(canonicalize(element))


def b64(data: bytes) -> str:
    """Base64-encode *data* for embedding in XML text nodes."""
    return base64.b64encode(data).decode("ascii")


def unb64(text: str | None) -> bytes:
    """Decode Base64 text from an XML node (``None`` → empty).

    Raises :class:`~repro.errors.XmlSecError` on malformed input —
    corrupted Base64 in a hostile document must fail closed, not leak
    a :class:`binascii.Error`.
    """
    if text is None:
        return b""
    try:
        return base64.b64decode(text.strip().encode("ascii"),
                                validate=True)
    except (binascii.Error, UnicodeEncodeError, ValueError) as exc:
        raise XmlSecError(f"malformed base64 content: {exc}") from exc
