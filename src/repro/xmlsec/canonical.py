"""Deterministic XML canonicalization.

Digital signatures must be computed over a byte stream, but two XML
serializations of the *same* infoset can differ (attribute order,
quoting, whitespace between attributes).  This module implements a
small, strict canonical form — a subset of Exclusive XML
Canonicalization adequate for documents this library itself produces:

* UTF-8 output;
* attributes sorted lexicographically by name;
* double-quoted attribute values with ``&amp; &lt; &gt; &quot; &#9;
  &#10; &#13;`` escaping;
* text content escaped (``& < >``) and preserved byte-for-byte
  otherwise;
* no XML declaration, comments, or processing instructions;
* empty elements serialized as ``<tag></tag>`` (never ``<tag/>``).

The guarantee the rest of the stack relies on is *round-trip
stability*: ``canonicalize(parse(canonicalize(e))) == canonicalize(e)``,
which the property tests check on random trees.

Because the canonical form of an element never depends on its ancestors
(no namespace or entity context), a subtree's serialization can be
cached and spliced verbatim into any later serialization of an
enclosing tree.  :class:`CanonicalMemo` exploits exactly that:
DRA4WfMS documents are append-only, so the CERs of every previous hop
re-serialize to the same bytes on every hop — memoising them turns
``to_bytes``/digesting from O(document) re-escaping work into an
O(new CER) serialization plus a buffer join.  See ``docs/ROUTING.md``
for the invalidation rules.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET

from ..errors import CanonicalizationError

__all__ = [
    "CanonicalMemo",
    "canonicalize",
    "canonicalize_boundaries",
    "canonicalize_segments",
    "parse_xml",
    "to_bytes",
]

# Characters outside the XML 1.0 Char production (control characters
# other than TAB/LF/CR, surrogates, and the U+FFFE/U+FFFF
# noncharacters).  Such characters cannot be represented in well-formed
# XML at all — not even as character references — so canonical output
# containing them would fail to re-parse and break every signature
# downstream.  Fail closed instead (found by the round-trip property
# test).
_INVALID_XML_CHAR = re.compile(
    "[^\t\n\r\x20-퟿-�\U00010000-\U0010FFFF]"
)

# Conservative XML Name subset for tags and attribute names.
_XML_NAME = re.compile(r"^[A-Za-z_][A-Za-z0-9._\-]*$")

# Single-pass escaping: one compiled-regex scan decides whether a
# string needs escaping at all.  Document text is dominated by base64
# signature/ciphertext blobs that contain no escapable characters, so
# the common case is a single C-level scan returning the string
# untouched — measurably faster than chaining str.replace passes (see
# benchmarks/test_canonical.py).  Only strings that do contain an
# escapable character pay for the translate.
_TEXT_NEEDS_ESCAPE = re.compile("[&<>\r]")
_ATTR_NEEDS_ESCAPE = re.compile("[&<>\"\t\n\r]")
_TEXT_ESCAPES = {
    ord("&"): "&amp;",
    ord("<"): "&lt;",
    ord(">"): "&gt;",
    # CR must be a character reference: parsers apply line-end
    # normalization (CR → LF) to literal carriage returns, which would
    # break round-trip stability (exactly why W3C C14N escapes it too).
    ord("\r"): "&#13;",
}
_ATTR_ESCAPES = {
    ord("&"): "&amp;",
    ord("<"): "&lt;",
    ord(">"): "&gt;",
    ord('"'): "&quot;",
    ord("\t"): "&#9;",
    ord("\n"): "&#10;",
    ord("\r"): "&#13;",
}

#: Attribute that makes an element memo-worthy: the signable elements of
#: a DRA4WfMS document all carry an ``Id``, and those are exactly the
#: subtrees that get re-canonicalized hop after hop.
_ID_ATTR = "Id"


def _check_chars(text: str, where: str) -> None:
    match = _INVALID_XML_CHAR.search(text)
    if match is not None:
        raise CanonicalizationError(
            f"{where} contains a character (U+{ord(match.group()):04X}) "
            f"that cannot be represented in XML; encode binary data as "
            f"base64 instead"
        )


def _escape_text(text: str) -> str:
    _check_chars(text, "text content")
    if _TEXT_NEEDS_ESCAPE.search(text) is None:
        return text
    return text.translate(_TEXT_ESCAPES)


def _escape_attr(value: str) -> str:
    _check_chars(value, "attribute value")
    if _ATTR_NEEDS_ESCAPE.search(value) is None:
        return value
    return value.translate(_ATTR_ESCAPES)


class CanonicalMemo:
    """Canonical serializations cached per element subtree.

    Entries are keyed by element *identity* and hold a strong reference
    to the element, so an ``id()`` can never be recycled while its entry
    lives.  A memo belongs to exactly one element tree; the owner must

    * call :meth:`discard` for every ancestor of a mutation point
      (appending a CER stales the serialization of the results section
      and the document root, but no sibling CER), and
    * never share a memo between trees — :meth:`remap` derives a fresh
      memo for a structure-preserving deep copy instead.

    The memo is a pure producer-side optimisation: verification never
    consults it, so no cache state can influence what a verifier
    accepts (the acceptance bar of ``docs/ROUTING.md``).
    """

    __slots__ = ("_entries", "_chunks", "hits", "misses")

    def __init__(self) -> None:
        #: id(element) → (element, serialized chunk)
        self._entries: dict[int, tuple[ET.Element, str]] = {}
        #: id(element) → (element, encoded bytes, content digest or None)
        #: for boundary subtrees (see :func:`canonicalize_boundaries`).
        #: Invalidated exactly like ``_entries`` — same owner contract.
        self._chunks: dict[int, tuple[ET.Element, bytes, str | None]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, element: ET.Element) -> str | None:
        """Cached chunk of *element*, or ``None``."""
        entry = self._entries.get(id(element))
        if entry is not None and entry[0] is element:
            self.hits += 1
            return entry[1]
        self.misses += 1
        return None

    def store(self, element: ET.Element, chunk: str) -> None:
        """Remember the canonical chunk of *element*."""
        self._entries[id(element)] = (element, chunk)
        # A (re)serialization supersedes any cached encoded bytes.
        self._chunks.pop(id(element), None)

    def chunk_entry(self, element: ET.Element) -> bytes | None:
        """Cached encoded bytes of a boundary subtree, or ``None``."""
        entry = self._chunks.get(id(element))
        if entry is not None and entry[0] is element:
            return entry[1]
        return None

    def store_chunk(self, element: ET.Element, data: bytes,
                    digest: str | None = None) -> None:
        """Remember the encoded boundary bytes (and digest) of *element*."""
        self._chunks[id(element)] = (element, data, digest)

    def chunk_digest_of(self, element: ET.Element) -> str | None:
        """Cached content digest of a boundary subtree, or ``None``."""
        entry = self._chunks.get(id(element))
        if entry is not None and entry[0] is element:
            return entry[2]
        return None

    def store_chunk_digest(self, element: ET.Element, digest: str) -> None:
        """Attach *digest* to the cached boundary bytes of *element*."""
        entry = self._chunks.get(id(element))
        if entry is not None and entry[0] is element:
            self._chunks[id(element)] = (element, entry[1], digest)

    def discard(self, element: ET.Element) -> None:
        """Invalidate the entry of *element* (mutation about to happen)."""
        self._entries.pop(id(element), None)
        self._chunks.pop(id(element), None)

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()
        self._chunks.clear()

    def remap(self, old_root: ET.Element,
              new_root: ET.Element) -> "CanonicalMemo":
        """Memo for a deep copy of the tree this memo belongs to.

        ``copy.deepcopy`` preserves structure, so iterating both trees
        in document order pairs each original element with its copy;
        every cached chunk is transferred to the copy at zero
        serialization cost.
        """
        fresh = CanonicalMemo()
        entries = self._entries
        chunks = self._chunks
        store = fresh._entries
        store_chunks = fresh._chunks
        for old, new in zip(old_root.iter(), new_root.iter()):
            entry = entries.get(id(old))
            if entry is not None and entry[0] is old:
                store[id(new)] = (new, entry[1])
            chunk = chunks.get(id(old))
            if chunk is not None and chunk[0] is old:
                store_chunks[id(new)] = (new, chunk[1], chunk[2])
        return fresh


def _write(element: ET.Element, out: list[str],
           memo: CanonicalMemo | None = None) -> None:
    tag = element.tag
    if not isinstance(tag, str):
        # Comment/PI nodes have callable tags in ElementTree; canonical
        # form excludes them entirely.
        return
    if memo is not None:
        cached = memo.lookup(element)
        if cached is not None:
            out.append(cached)
            return
    if memo is not None and element.get(_ID_ATTR) is not None:
        # Memo-worthy subtree: serialize into its own buffer so the
        # joined chunk can be reused by every later serialization.
        local: list[str] = []
        _write_direct(element, local, memo)
        chunk = "".join(local)
        memo.store(element, chunk)
        out.append(chunk)
    else:
        _write_direct(element, out, memo)


def _write_direct(element: ET.Element, out: list[str],
                  memo: CanonicalMemo | None) -> None:
    tag = element.tag
    if not _XML_NAME.match(tag):
        raise CanonicalizationError(f"invalid element name {tag!r}")
    out.append(f"<{tag}")
    for name in sorted(element.keys()):
        if not _XML_NAME.match(name):
            raise CanonicalizationError(f"invalid attribute name {name!r}")
        value = element.get(name)
        out.append(f' {name}="{_escape_attr(value or "")}"')
    out.append(">")
    if element.text:
        out.append(_escape_text(element.text))
    for child in element:
        _write(child, out, memo)
        if child.tail:
            out.append(_escape_text(child.tail))
    out.append(f"</{tag}>")


def canonicalize(element: ET.Element,
                 memo: CanonicalMemo | None = None) -> bytes:
    """Return the canonical UTF-8 byte serialization of *element*.

    The element's own tail text is excluded (it belongs to the parent),
    matching XML-DSig reference processing.

    When *memo* is given, previously serialized unchanged subtrees are
    spliced from the cache, and the serialization of *element* itself
    (plus every ``Id``-carrying subtree) is recorded for reuse.  The
    memo must belong to the tree containing *element*.
    """
    if element is None:
        raise CanonicalizationError("cannot canonicalize None")
    if memo is not None:
        cached = memo.lookup(element)
        if cached is not None:
            return cached.encode("utf-8")
        out: list[str] = []
        _write_direct(element, out, memo)
        chunk = "".join(out)
        if isinstance(element.tag, str):
            memo.store(element, chunk)
        return chunk.encode("utf-8")
    out = []
    _write(element, out)
    return "".join(out).encode("utf-8")


def canonicalize_boundaries(
    element: ET.Element,
    boundary_tag: str,
    memo: CanonicalMemo | None = None,
) -> list[tuple[bool, bytes, ET.Element | None]]:
    """Canonical serialization of *element*, split at boundary subtrees.

    Returns an ordered list of ``(is_boundary, bytes, node)`` segments
    whose byte concatenation equals ``canonicalize(element)``.  Every
    maximal subtree whose tag equals *boundary_tag* becomes its own
    segment (flagged ``True``, *node* set to the subtree root); the glue
    around them is merged into unflagged segments with ``node=None``.
    Because canonical serialization is position-independent, each
    boundary segment is exactly ``canonicalize(boundary_element)`` —
    this is what content-addresses a document's CERs for the delta
    routing protocol (:mod:`repro.document.delta`).

    With a *memo*, boundary segments reuse not just the cached chunk
    string but the cached **encoded bytes** (the UTF-8 encode of a long
    base64-heavy CER is itself measurable on the per-hop path); exposing
    *node* lets :func:`repro.document.delta.chunk_bytes` cache the
    content digest under the same invalidation contract.
    """
    if element is None:
        raise CanonicalizationError("cannot canonicalize None")
    segments: list[tuple[bool, bytes, ET.Element | None]] = []
    glue: list[str] = []

    def flush() -> None:
        if glue:
            segments.append((False, "".join(glue).encode("utf-8"), None))
            glue.clear()

    def walk(node: ET.Element) -> None:
        tag = node.tag
        if not isinstance(tag, str):
            return
        if tag == boundary_tag:
            flush()
            if memo is not None:
                cached = memo.chunk_entry(node)
                if cached is not None:
                    segments.append((True, cached, node))
                    return
            local: list[str] = []
            _write(node, local, memo)
            data = "".join(local).encode("utf-8")
            if memo is not None:
                memo.store_chunk(node, data)
            segments.append((True, data, node))
            return
        if not _XML_NAME.match(tag):
            raise CanonicalizationError(f"invalid element name {tag!r}")
        glue.append(f"<{tag}")
        for name in sorted(node.keys()):
            if not _XML_NAME.match(name):
                raise CanonicalizationError(
                    f"invalid attribute name {name!r}"
                )
            value = node.get(name)
            glue.append(f' {name}="{_escape_attr(value or "")}"')
        glue.append(">")
        if node.text:
            glue.append(_escape_text(node.text))
        for child in node:
            walk(child)
            if child.tail:
                glue.append(_escape_text(child.tail))
        glue.append(f"</{tag}>")

    walk(element)
    flush()
    return segments


def canonicalize_segments(
    element: ET.Element,
    boundary_tag: str,
    memo: CanonicalMemo | None = None,
) -> list[tuple[bool, bytes]]:
    """:func:`canonicalize_boundaries` without the node handles."""
    return [(is_boundary, data) for is_boundary, data, _ in
            canonicalize_boundaries(element, boundary_tag, memo)]


def to_bytes(element: ET.Element) -> bytes:
    """Alias of :func:`canonicalize` for readability at call sites."""
    return canonicalize(element)


def parse_xml(data: bytes | str) -> ET.Element:
    """Parse XML bytes/str into an Element, wrapping parse errors."""
    if isinstance(data, bytes):
        try:
            data = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CanonicalizationError(
                f"document is not valid UTF-8: {exc}"
            ) from exc
    try:
        return ET.fromstring(data)
    except ET.ParseError as exc:
        raise CanonicalizationError(f"malformed XML: {exc}") from exc
