"""Deterministic XML canonicalization.

Digital signatures must be computed over a byte stream, but two XML
serializations of the *same* infoset can differ (attribute order,
quoting, whitespace between attributes).  This module implements a
small, strict canonical form — a subset of Exclusive XML
Canonicalization adequate for documents this library itself produces:

* UTF-8 output;
* attributes sorted lexicographically by name;
* double-quoted attribute values with ``&amp; &lt; &gt; &quot; &#9;
  &#10; &#13;`` escaping;
* text content escaped (``& < >``) and preserved byte-for-byte
  otherwise;
* no XML declaration, comments, or processing instructions;
* empty elements serialized as ``<tag></tag>`` (never ``<tag/>``).

The guarantee the rest of the stack relies on is *round-trip
stability*: ``canonicalize(parse(canonicalize(e))) == canonicalize(e)``,
which the property tests check on random trees.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET

from ..errors import CanonicalizationError

__all__ = ["canonicalize", "parse_xml", "to_bytes"]

# Characters outside the XML 1.0 Char production (control characters
# other than TAB/LF/CR, surrogates, and the U+FFFE/U+FFFF
# noncharacters).  Such characters cannot be represented in well-formed
# XML at all — not even as character references — so canonical output
# containing them would fail to re-parse and break every signature
# downstream.  Fail closed instead (found by the round-trip property
# test).
_INVALID_XML_CHAR = re.compile(
    "[^\t\n\r\x20-퟿-�\U00010000-\U0010ffff]"
)

# Conservative XML Name subset for tags and attribute names.
_XML_NAME = re.compile(r"^[A-Za-z_][A-Za-z0-9._\-]*$")


def _check_chars(text: str, where: str) -> None:
    match = _INVALID_XML_CHAR.search(text)
    if match is not None:
        raise CanonicalizationError(
            f"{where} contains a character (U+{ord(match.group()):04X}) "
            f"that cannot be represented in XML; encode binary data as "
            f"base64 instead"
        )


def _escape_text(text: str) -> str:
    _check_chars(text, "text content")
    # CR must be a character reference: parsers apply line-end
    # normalization (CR → LF) to literal carriage returns, which would
    # break round-trip stability (exactly why W3C C14N escapes it too).
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace("\r", "&#13;")
    )


def _escape_attr(value: str) -> str:
    _check_chars(value, "attribute value")
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
        .replace("\t", "&#9;")
        .replace("\n", "&#10;")
        .replace("\r", "&#13;")
    )


def _write(element: ET.Element, out: list[str]) -> None:
    tag = element.tag
    if not isinstance(tag, str):
        # Comment/PI nodes have callable tags in ElementTree; canonical
        # form excludes them entirely.
        return
    if not _XML_NAME.match(tag):
        raise CanonicalizationError(f"invalid element name {tag!r}")
    out.append(f"<{tag}")
    for name in sorted(element.keys()):
        if not _XML_NAME.match(name):
            raise CanonicalizationError(f"invalid attribute name {name!r}")
        value = element.get(name)
        out.append(f' {name}="{_escape_attr(value or "")}"')
    out.append(">")
    if element.text:
        out.append(_escape_text(element.text))
    for child in element:
        _write(child, out)
        if child.tail:
            out.append(_escape_text(child.tail))
    out.append(f"</{tag}>")


def canonicalize(element: ET.Element) -> bytes:
    """Return the canonical UTF-8 byte serialization of *element*.

    The element's own tail text is excluded (it belongs to the parent),
    matching XML-DSig reference processing.
    """
    if element is None:
        raise CanonicalizationError("cannot canonicalize None")
    out: list[str] = []
    _write(element, out)
    return "".join(out).encode("utf-8")


def to_bytes(element: ET.Element) -> bytes:
    """Alias of :func:`canonicalize` for readability at call sites."""
    return canonicalize(element)


def parse_xml(data: bytes | str) -> ET.Element:
    """Parse XML bytes/str into an Element, wrapping parse errors."""
    if isinstance(data, bytes):
        try:
            data = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CanonicalizationError(
                f"document is not valid UTF-8: {exc}"
            ) from exc
    try:
        return ET.fromstring(data)
    except ET.ParseError as exc:
        raise CanonicalizationError(f"malformed XML: {exc}") from exc
