"""XML digital signatures (XML-DSig style) with multi-reference support.

A :class:`XmlSignature` mirrors the structure of a W3C XML signature:

.. code-block:: xml

    <Signature Id="sig-A3-0">
      <SignedInfo>
        <Reference URI="#enc-A3-result"><DigestValue>…</DigestValue></Reference>
        <Reference URI="#sig-A2-0"><DigestValue>…</DigestValue></Reference>
      </SignedInfo>
      <SignatureValue>…</SignatureValue>
      <KeyInfo><KeyName>tony@megacorp</KeyName></KeyInfo>
    </Signature>

Signing canonicalizes ``SignedInfo`` (which contains the digests of all
referenced elements) and RSA-signs those bytes; verification recomputes
every reference digest against the *current* document and then checks
the RSA signature.  Because a Reference may point at another Signature
element, signatures compose into the cascade of §2.1 of the paper: the
signature of activity ``Ai`` covers the signature elements of all its
predecessors, hence (transitively) everything they signed.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass

from ..crypto.backend import CryptoBackend, default_backend
from ..crypto.pure.rsa import RsaPrivateKey, RsaPublicKey
from ..errors import XmlSignatureError
from .canonical import canonicalize
from .digest import b64, digest_element, unb64

__all__ = ["Reference", "XmlSignature", "sign_references", "find_by_id",
           "index_by_id", "ALG_PKCS1V15", "ALG_PSS"]

#: Attribute used for intra-document references.
ID_ATTR = "Id"

#: Supported SignatureMethod algorithm identifiers.
ALG_PKCS1V15 = "rsa-pkcs1v15-sha256"
ALG_PSS = "rsa-pss-sha256"
_SUPPORTED_ALGORITHMS = (ALG_PKCS1V15, ALG_PSS)


@dataclass(frozen=True)
class Reference:
    """One signed reference: an element id plus its digest."""

    uri: str          # "#<element-id>"
    digest: bytes

    @property
    def target_id(self) -> str:
        """The referenced element id (URI without the leading ``#``)."""
        if not self.uri.startswith("#"):
            raise XmlSignatureError(f"unsupported reference URI {self.uri!r}")
        return self.uri[1:]


def index_by_id(root: ET.Element) -> dict[str, ET.Element]:
    """Map every ``Id`` attribute in the tree to its element.

    Duplicate ids raise — a signature over an ambiguous reference would
    be meaningless (and is a classic signature-wrapping attack vector).
    """
    index: dict[str, ET.Element] = {}
    for elem in root.iter():
        eid = elem.get(ID_ATTR)
        if eid is None:
            continue
        if eid in index:
            raise XmlSignatureError(f"duplicate element id {eid!r}")
        index[eid] = elem
    return index


def find_by_id(root: ET.Element, element_id: str) -> ET.Element:
    """Return the element whose ``Id`` equals *element_id*."""
    found = None
    for elem in root.iter():
        if elem.get(ID_ATTR) == element_id:
            if found is not None:
                raise XmlSignatureError(f"duplicate element id {element_id!r}")
            found = elem
    if found is None:
        raise XmlSignatureError(f"no element with id {element_id!r}")
    return found


class XmlSignature:
    """Wrapper around a ``<Signature>`` element."""

    def __init__(self, element: ET.Element) -> None:
        if element.tag != "Signature":
            raise XmlSignatureError(
                f"expected <Signature>, got <{element.tag}>"
            )
        self.element = element

    # -- accessors -----------------------------------------------------------

    @property
    def signature_id(self) -> str:
        """The ``Id`` attribute of the signature element."""
        sid = self.element.get(ID_ATTR)
        if sid is None:
            raise XmlSignatureError("signature element has no Id")
        return sid

    @property
    def signer(self) -> str:
        """The identity named in ``KeyInfo/KeyName``."""
        node = self.element.find("KeyInfo/KeyName")
        if node is None or not node.text:
            raise XmlSignatureError("signature has no KeyInfo/KeyName")
        return node.text

    @property
    def signature_value(self) -> bytes:
        """The raw RSA signature bytes."""
        node = self.element.find("SignatureValue")
        if node is None:
            raise XmlSignatureError("signature has no SignatureValue")
        return unb64(node.text)

    @property
    def algorithm(self) -> str:
        """The SignatureMethod algorithm identifier."""
        node = self.element.find("SignedInfo/SignatureMethod")
        if node is None:
            raise XmlSignatureError("signature has no SignatureMethod")
        return node.get("Algorithm", "")

    @property
    def references(self) -> list[Reference]:
        """All signed references, in document order."""
        signed_info = self.element.find("SignedInfo")
        if signed_info is None:
            raise XmlSignatureError("signature has no SignedInfo")
        refs = []
        for node in signed_info.findall("Reference"):
            uri = node.get("URI")
            if uri is None:
                raise XmlSignatureError("Reference missing URI")
            digest_node = node.find("DigestValue")
            if digest_node is None:
                raise XmlSignatureError("Reference missing DigestValue")
            refs.append(Reference(uri=uri, digest=unb64(digest_node.text)))
        return refs

    @property
    def referenced_ids(self) -> list[str]:
        """Ids of all referenced elements."""
        return [ref.target_id for ref in self.references]

    # -- verification ----------------------------------------------------------

    def prepare_verify(self, root: ET.Element,
                       backend: CryptoBackend | None = None,
                       id_index: dict[str, ET.Element] | None = None,
                       digest_memo: dict[int, bytes] | None = None,
                       ) -> tuple[bytes, bytes, str]:
        """Run every non-RSA check; return the pending RSA job.

        Performs the reference digest comparisons and structural checks
        of :meth:`verify` and returns ``(message, signature, algorithm)``
        — the canonical ``SignedInfo`` bytes, the raw signature value,
        and ``"pkcs1v15"``/``"pss"`` — ready for a (possibly batched)
        RSA check.  Raises :class:`XmlSignatureError` exactly where
        :meth:`verify` would; splitting the phases changes *when* the
        RSA work runs, never which failure surfaces.

        *digest_memo* maps ``id(element)`` to its already-computed
        digest.  Cascaded signatures reference overlapping element sets,
        so one verification pass over a document recomputes the same
        digests O(n) times; a memo scoped to a single pass over a
        *static* tree (the verifier never mutates it) makes that O(n)
        canonicalizations total without weakening any check — a wrong
        cached digest still fails the comparison below.
        """
        backend = backend or default_backend()
        index = id_index if id_index is not None else index_by_id(root)
        for ref in self.references:
            target = index.get(ref.target_id)
            if target is None:
                raise XmlSignatureError(
                    f"referenced element {ref.target_id!r} not found"
                )
            if digest_memo is None:
                actual = digest_element(target, backend)
            else:
                actual = digest_memo.get(id(target))
                if actual is None:
                    actual = digest_element(target, backend)
                    digest_memo[id(target)] = actual
            if actual != ref.digest:
                raise XmlSignatureError(
                    f"digest mismatch for element {ref.target_id!r} "
                    f"(document was altered)"
                )
        signed_info = self.element.find("SignedInfo")
        if signed_info is None:
            raise XmlSignatureError("signature has no SignedInfo")
        algorithm = self.algorithm
        if algorithm not in _SUPPORTED_ALGORITHMS:
            raise XmlSignatureError(
                f"unsupported SignatureMethod {algorithm!r} "
                f"(supported: {', '.join(_SUPPORTED_ALGORITHMS)})"
            )
        mode = "pss" if algorithm == ALG_PSS else "pkcs1v15"
        return canonicalize(signed_info), self.signature_value, mode

    def wrap_rsa_failure(self, exc: Exception) -> XmlSignatureError:
        """The exception :meth:`verify` raises for an RSA failure *exc*.

        Exposed so a batched verifier reports byte-identical errors:
        ``XmlSignatureError`` passes through unchanged (mirroring the
        re-raise in :meth:`verify`), anything else is wrapped with the
        same message and cause chain.
        """
        if isinstance(exc, XmlSignatureError):
            return exc
        wrapped = XmlSignatureError(
            f"RSA signature of {self.signature_id!r} invalid: {exc}"
        )
        wrapped.__cause__ = exc
        return wrapped

    def verify(self, public_key: RsaPublicKey, root: ET.Element,
               backend: CryptoBackend | None = None,
               id_index: dict[str, ET.Element] | None = None,
               digest_memo: dict[int, bytes] | None = None) -> None:
        """Verify this signature against the document rooted at *root*.

        Checks (1) that every referenced element's current digest equals
        the signed digest, and (2) the RSA signature over the canonical
        ``SignedInfo``.  Raises :class:`XmlSignatureError` on failure.
        See :meth:`prepare_verify` for the *digest_memo* contract.
        """
        backend = backend or default_backend()
        message, signature, mode = self.prepare_verify(
            root, backend, id_index, digest_memo
        )
        try:
            if mode == "pss":
                backend.verify_pss(public_key, message, signature)
            else:
                backend.verify(public_key, message, signature)
        except XmlSignatureError:
            raise
        except Exception as exc:
            raise XmlSignatureError(
                f"RSA signature of {self.signature_id!r} invalid: {exc}"
            ) from exc


def sign_references(signature_id: str,
                    signer: str,
                    private_key: RsaPrivateKey,
                    targets: list[ET.Element],
                    backend: CryptoBackend | None = None,
                    algorithm: str = ALG_PKCS1V15) -> XmlSignature:
    """Create a ``<Signature>`` covering *targets* (each must carry an Id).

    Parameters
    ----------
    signature_id:
        Id given to the new Signature element so later signatures can
        reference it (the cascade).
    signer:
        Identity recorded in KeyInfo; verification resolves it to a
        public key through the PKI directory.
    targets:
        Elements to sign.  Their **current canonical form** is digested.
    algorithm:
        ``rsa-pkcs1v15-sha256`` (default, deterministic — what the
        2012-era XML-DSig stacks used) or ``rsa-pss-sha256``
        (randomised, the modern recommendation).
    """
    backend = backend or default_backend()
    if algorithm not in _SUPPORTED_ALGORITHMS:
        raise XmlSignatureError(
            f"unsupported SignatureMethod {algorithm!r}"
        )
    sig = ET.Element("Signature", {ID_ATTR: signature_id})
    signed_info = ET.SubElement(sig, "SignedInfo")
    ET.SubElement(signed_info, "CanonicalizationMethod",
                  {"Algorithm": "repro-exc-c14n"})
    ET.SubElement(signed_info, "SignatureMethod",
                  {"Algorithm": algorithm})
    for target in targets:
        target_id = target.get(ID_ATTR)
        if target_id is None:
            raise XmlSignatureError(
                f"cannot sign element <{target.tag}> without an Id"
            )
        ref = ET.SubElement(signed_info, "Reference", {"URI": f"#{target_id}"})
        ET.SubElement(ref, "DigestMethod", {"Algorithm": "sha256"})
        digest_value = ET.SubElement(ref, "DigestValue")
        digest_value.text = b64(digest_element(target, backend))
    signature_value = ET.SubElement(sig, "SignatureValue")
    payload = canonicalize(signed_info)
    if algorithm == ALG_PSS:
        signature_value.text = b64(backend.sign_pss(private_key, payload))
    else:
        signature_value.text = b64(backend.sign(private_key, payload))
    key_info = ET.SubElement(sig, "KeyInfo")
    key_name = ET.SubElement(key_info, "KeyName")
    key_name.text = signer
    return XmlSignature(sig)
