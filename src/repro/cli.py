"""Command-line interface: inspect, verify, and audit DRA4WfMS documents.

Usage (also via ``python -m repro``):

.. code-block:: bash

    # Generate a demo world + executed document to play with
    python -m repro demo --out /tmp/dra

    # Structural inspection (no keys needed)
    python -m repro inspect /tmp/dra/final_document.xml

    # Full cryptographic verification against the saved PKI
    python -m repro verify --world /tmp/dra/world.json \\
        /tmp/dra/final_document.xml

    # Chronological audit trail
    python -m repro trail /tmp/dra/final_document.xml

    # Dispute evidence for one activity execution
    python -m repro evidence --world /tmp/dra/world.json \\
        --activity D --iteration 1 /tmp/dra/final_document.xml
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from .core.audit import extract_evidence, render_trail
from .document.document import Dra4wfmsDocument
from .document.nonrepudiation import nonrepudiation_scope
from .document.verify import verify_document
from .errors import ReproError
from .workloads.participants import World

__all__ = ["main", "build_parser"]


def _load_document(path: str) -> Dra4wfmsDocument:
    return Dra4wfmsDocument.from_bytes(pathlib.Path(path).read_bytes())


def _load_world(path: str) -> World:
    """Load either a full world or a public (verification-only) trust file."""
    data = json.loads(pathlib.Path(path).read_text())
    authorities = data.get("authorities") or []
    if authorities and "public_key" in authorities[0]:
        return World.from_public_dict(data)
    return World.from_dict(data)


def cmd_demo(args: argparse.Namespace) -> int:
    """Create a demo world, run Fig. 9A, save world + final document."""
    from .core.runtime import InMemoryRuntime
    from .document.builder import build_initial_document
    from .workloads.figure9 import (
        DESIGNER,
        PARTICIPANTS,
        figure9_responders,
        figure_9a_definition,
    )
    from .workloads.participants import build_world

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    definition = figure_9a_definition()
    world = build_world([DESIGNER, *PARTICIPANTS.values()])
    initial = build_initial_document(definition, world.keypair(DESIGNER))
    runtime = InMemoryRuntime(world.directory, world.keypairs)
    trace = runtime.run(initial, definition,
                        figure9_responders(args.loops))

    (out / "world.json").write_text(json.dumps(world.to_dict()))
    (out / "trust.json").write_text(json.dumps(world.to_public_dict()))
    (out / "initial_document.xml").write_bytes(initial.to_bytes())
    (out / "final_document.xml").write_bytes(
        trace.final_document.to_bytes()
    )
    print(f"wrote {out}/world.json (full), trust.json (public keys "
          f"only — hand this to auditors), initial_document.xml, "
          f"final_document.xml ({trace.final_size} bytes, "
          f"{len(trace.steps)} executions)")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    """Structural listing of a document (no keys required)."""
    document = _load_document(args.document)
    print(f"process      : {document.process_name} "
          f"({document.process_id})")
    print(f"designer     : {document.designer}")
    print(f"size         : {document.size_bytes} bytes")
    print(f"definition   : "
          f"{'encrypted' if document.definition_is_encrypted else 'plain'}")
    cers = document.cers(include_definition=False)
    print(f"CERs         : {len(cers)}")
    for cer in cers:
        timestamp = (f" t={cer.timestamp}" if cer.timestamp is not None
                     else "")
        print(f"  {cer.cer_id:20s} {cer.kind:12s} "
              f"{cer.activity_id}^{cer.iteration} by "
              f"{cer.participant}{timestamp}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Cryptographically verify a document against a saved world."""
    document = _load_document(args.document)
    world = _load_world(args.world)
    try:
        report = verify_document(document, world.directory,
                                 workers=args.workers)
    except ReproError as exc:
        print(f"INVALID: {type(exc).__name__}: {exc}")
        return 1
    print(f"VALID: {report.signatures_verified} signatures verified, "
          f"{report.cers_checked} CERs checked"
          + (f"; warnings: {report.warnings}" if report.warnings else ""))
    return 0


def cmd_archive(args: argparse.Namespace) -> int:
    """Seal a document into a cold-verifiable archival bundle."""
    from .document.archive import build_archive

    document = _load_document(args.document)
    world = _load_world(args.world)
    bundle = build_archive(document, world,
                           tfc_identities=args.tfc or ())
    data = bundle.to_bytes()
    pathlib.Path(args.out).write_bytes(data)
    print(f"wrote {args.out} ({len(data)} bytes: "
          f"{len(bundle.chunks)} chunks, "
          f"{len(bundle.trust.get('certificates', []))} certificates, "
          f"process {bundle.process_id})")
    return 0


def cmd_verify_archive(args: argparse.Namespace) -> int:
    """Cold-verify an archival bundle — no pool, HBase, or network."""
    from .document.archive import verify_archive

    data = pathlib.Path(args.bundle).read_bytes()
    try:
        report = verify_archive(data)
    except ReproError as exc:
        print(f"INVALID: {type(exc).__name__}: {exc}")
        return 1
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"VALID: {report.signatures_verified} signatures verified, "
          f"{report.cers_checked} CERs checked, "
          f"{report.chunks_checked} chunks re-hashed "
          f"({report.doc_bytes} document bytes)"
          + (f"; warnings: {report.warnings}" if report.warnings else ""))
    return 0


def cmd_trail(args: argparse.Namespace) -> int:
    """Print the chronological audit trail."""
    print(render_trail(_load_document(args.document)))
    return 0


def cmd_scope(args: argparse.Namespace) -> int:
    """Print the nonrepudiation scope of one CER (Algorithm 1)."""
    document = _load_document(args.document)
    cer = (document.find_cer(args.activity, args.iteration)
           or document.find_cer(args.activity, args.iteration, "tfc"))
    if cer is None:
        print(f"no CER for {args.activity}^{args.iteration}")
        return 1
    scope = nonrepudiation_scope(document, cer)
    print(f"nonrepudiation scope of {cer.cer_id} "
          f"(signed by {cer.participant}):")
    for item in scope:
        print(f"  {item.cer_id:20s} by {item.participant}")
    return 0


def cmd_evidence(args: argparse.Namespace) -> int:
    """Print the dispute-evidence report for one execution."""
    document = _load_document(args.document)
    world = _load_world(args.world)
    bundle = extract_evidence(document, world.directory,
                              args.activity, args.iteration,
                              workers=args.workers)
    print(bundle.render_report())
    return 0 if bundle.document_valid else 1


def _write_trace_outputs(tracer, args: argparse.Namespace) -> None:
    """Serialize a finished tracer to the files the user asked for."""
    from .obs import to_folded_stacks, write_chrome_trace

    if args.trace:
        size = write_chrome_trace(tracer, args.trace)
        print(f"trace: wrote {args.trace} ({size} bytes, "
              f"{len(tracer.spans)} spans, {len(tracer.charges)} events; "
              f"open in https://ui.perfetto.dev)", file=sys.stderr)
    if args.trace_folded:
        text = to_folded_stacks(tracer)
        pathlib.Path(args.trace_folded).write_text(text)
        print(f"trace: wrote {args.trace_folded} "
              f"({len(text.splitlines())} folded stacks)", file=sys.stderr)


def cmd_loadtest(args: argparse.Namespace) -> int:
    """Run a multi-instance fleet load test and print the report."""
    from .fleet import (
        ClosedLoop,
        FleetConfig,
        OpenLoop,
        RealFleetConfig,
        build_fleet,
        run_real_fleet,
        workload_from_spec,
    )

    try:
        workload = workload_from_spec(args.workflow, loops=args.loops)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # --replication and --gc-interval only make sense over the chunk
    # store, so either implies delta routing.
    delta = (args.delta or args.replication is not None
             or args.gc_interval > 0)
    if args.archive_out and not args.gc_interval:
        print("error: --archive-out requires --gc-interval (bundles "
              "are exported by the lifecycle sweep)", file=sys.stderr)
        return 2
    tracer = None
    if args.trace or args.trace_folded:
        from .obs import Tracer
        tracer = Tracer()
    if args.real:
        if args.metrics:
            print("note: --metrics needs the simulated fleet report; "
                  "ignored with --real", file=sys.stderr)
        if args.gc_interval or args.archive_out or args.chunk_cache_bytes:
            print("note: --gc-interval/--archive-out/--chunk-cache-bytes "
                  "need the simulated fleet; ignored with --real",
                  file=sys.stderr)
        config = RealFleetConfig(
            spec=args.workflow,
            instances=args.instances,
            seed=args.seed,
            workers=args.workers,
            loops=args.loops,
            audit_every=args.audit_every,
            delta_routing=delta,
            verify_workers=args.verify_workers,
            verify_batch=True if args.verify_workers else None,
            portals=args.portals,
            placement=args.placement,
            chunk_replicas=args.replication,
            split_threshold_rows=args.split_rows,
        )
        report = run_real_fleet(config, tracer=tracer)
        if tracer is not None:
            _write_trace_outputs(tracer, args)
        if args.json:
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        else:
            print(report.render())
        return 0 if report.audit_failures == 0 else 1
    if args.mode == "open":
        arrivals = OpenLoop(instances=args.instances,
                            rate_per_second=args.rate)
    else:
        arrivals = ClosedLoop(instances=args.instances,
                              concurrency=args.concurrency)
    archive_sink = None
    if args.archive_out:
        out_dir = pathlib.Path(args.archive_out)
        out_dir.mkdir(parents=True, exist_ok=True)

        def archive_sink(process_id: str, bundle) -> None:
            (out_dir / f"{process_id}.json").write_bytes(
                bundle.to_bytes())

    config = FleetConfig(
        arrivals=arrivals,
        seed=args.seed,
        think_seconds=args.think,
        tfc_workers=args.tfc_workers,
        audit_every=args.audit_every,
        verify_workers=args.verify_workers,
        verify_batch=True if args.verify_workers else None,
        tracer=tracer,
        collect_metrics=args.metrics,
        gc_interval=args.gc_interval,
        chunk_cache_bytes=args.chunk_cache_bytes,
        archive_sink=archive_sink,
    )
    fleet = build_fleet(workload, config, portals=args.portals,
                        delta_routing=delta,
                        placement=args.placement,
                        chunk_replicas=args.replication,
                        split_threshold_rows=args.split_rows)
    report = fleet.run()
    if tracer is not None:
        _write_trace_outputs(tracer, args)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.audit_failures == 0 else 1


def cmd_trace_report(args: argparse.Namespace) -> int:
    """Validate + summarize a Chrome trace written by ``loadtest --trace``."""
    from .obs import summarize_chrome_trace, validate_chrome_trace

    payload = json.loads(pathlib.Path(args.trace_file).read_text())
    try:
        counts = validate_chrome_trace(payload)
    except ValueError as exc:
        print(f"INVALID trace: {exc}", file=sys.stderr)
        return 1
    rows = summarize_chrome_trace(payload)
    total_us = sum(int(row["sim_us"]) for row in rows)
    print(f"valid trace: {counts['spans']} spans, {counts['leaves']} "
          f"charge leaves, {counts['instants']} instants "
          f"({total_us / 1e6:.6f} sim-seconds)")
    print(f"{'component':<12} {'spans':>8} {'leaves':>8} "
          f"{'sim_us':>14} {'share':>8}")
    for row in rows:
        print(f"{row['component']:<12} {row['spans']:>8} "
              f"{row['leaves']:>8} {row['sim_us']:>14} "
              f"{float(row['share']) * 100:>7.2f}%")
    return 0


def cmd_render(args: argparse.Namespace) -> int:
    """Render the (effective) workflow definition of a document."""
    from .document.amendments import effective_definition
    from .model.render import to_ascii, to_dot

    document = _load_document(args.document)
    definition = effective_definition(document)
    if args.format == "dot":
        print(to_dot(definition))
    else:
        print(to_ascii(definition))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DRA4WfMS document tooling (IPDPSW 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="generate a demo world + document")
    demo.add_argument("--out", required=True, help="output directory")
    demo.add_argument("--loops", type=int, default=1,
                      help="loop iterations before acceptance")
    demo.set_defaults(func=cmd_demo)

    inspect = sub.add_parser("inspect", help="structural listing")
    inspect.add_argument("document")
    inspect.set_defaults(func=cmd_inspect)

    verify = sub.add_parser("verify", help="cryptographic verification")
    verify.add_argument("document")
    verify.add_argument("--world", required=True,
                        help="world.json with the PKI")
    verify.add_argument("--workers", type=int, default=None,
                        help="fan independent signature checks across "
                             "N threads (long cascades)")
    verify.set_defaults(func=cmd_verify)

    archive = sub.add_parser(
        "archive",
        help="seal a document into a cold-verifiable archival bundle")
    archive.add_argument("document")
    archive.add_argument("--world", required=True,
                         help="world.json or trust.json with the PKI")
    archive.add_argument("--out", required=True,
                         help="bundle output path")
    archive.add_argument("--tfc", action="append", default=None,
                         metavar="IDENTITY",
                         help="identity accepted as a TFC server "
                              "(repeatable)")
    archive.set_defaults(func=cmd_archive)

    verify_archive = sub.add_parser(
        "verify-archive",
        help="cold-verify an archival bundle (no pool/HBase/network)")
    verify_archive.add_argument("bundle")
    verify_archive.add_argument("--json", action="store_true",
                                help="emit the verification summary "
                                     "as JSON")
    verify_archive.set_defaults(func=cmd_verify_archive)

    trail = sub.add_parser("trail", help="chronological audit trail")
    trail.add_argument("document")
    trail.set_defaults(func=cmd_trail)

    scope = sub.add_parser("scope", help="nonrepudiation scope of a CER")
    scope.add_argument("document")
    scope.add_argument("--activity", required=True)
    scope.add_argument("--iteration", type=int, default=0)
    scope.set_defaults(func=cmd_scope)

    render = sub.add_parser("render",
                            help="render the workflow definition")
    render.add_argument("document")
    render.add_argument("--format", choices=("dot", "ascii"),
                        default="ascii")
    render.set_defaults(func=cmd_render)

    loadtest = sub.add_parser(
        "loadtest",
        help="run a concurrent multi-instance fleet load test")
    loadtest.add_argument("--instances", type=int, default=100,
                          help="process instances to run")
    loadtest.add_argument("--seed", type=int, default=0,
                          help="PRNG seed (same seed → same report)")
    loadtest.add_argument("--mode", choices=("open", "closed"),
                          default="open",
                          help="open = Poisson arrivals, closed = fixed "
                               "concurrency with re-submission")
    loadtest.add_argument("--rate", type=float, default=5.0,
                          help="open loop: mean arrivals per sim-second")
    loadtest.add_argument("--concurrency", type=int, default=10,
                          help="closed loop: instances in flight")
    loadtest.add_argument("--workflow", default="fig9",
                          help="fig9, chain:N[:P] or diamond:N[:P] "
                               "(P participants cycling)")
    loadtest.add_argument("--loops", type=int, default=0,
                          help="extra loop iterations (fig9 only)")
    loadtest.add_argument("--think", type=float, default=0.0,
                          help="mean participant think time, sim-seconds")
    loadtest.add_argument("--portals", type=int, default=2,
                          help="portal servers")
    loadtest.add_argument("--placement", choices=("round-robin", "ring"),
                          default="round-robin",
                          help="instance→portal placement: ring pins "
                               "each instance to one portal by "
                               "consistent hash and reports per-portal "
                               "load (see docs/SHARDING.md)")
    loadtest.add_argument("--replication", type=int, default=None,
                          metavar="R",
                          help="replicate delta chunks over R region-"
                               "server shards with read-repair "
                               "(implies --delta)")
    loadtest.add_argument("--split-rows", type=int, default=256,
                          help="HBase region auto-split row threshold")
    loadtest.add_argument("--tfc-workers", type=int, default=1,
                          help="parallel TFC verify/sign workers")
    loadtest.add_argument("--audit-every", type=int, default=25,
                          help="cold-verify every Nth completion "
                               "(0 disables)")
    loadtest.add_argument("--delta", action="store_true",
                          help="delta document routing: ship only the "
                               "CER chunks each side has not seen")
    loadtest.add_argument("--gc-interval", type=int, default=0,
                          metavar="N",
                          help="storage-lifecycle sweep: every N "
                               "completions, archive+compact+retire "
                               "finished instances and GC zero-ref "
                               "chunks (implies --delta; 0 disables)")
    loadtest.add_argument("--chunk-cache-bytes", type=int, default=None,
                          metavar="B",
                          help="LRU byte budget per client chunk cache "
                               "(delta mode; default unbounded)")
    loadtest.add_argument("--archive-out", metavar="DIR", default=None,
                          help="export a cold-verifiable archival "
                               "bundle per retired instance into DIR "
                               "(requires --gc-interval)")
    loadtest.add_argument("--real", action="store_true",
                          help="true-parallel mode: run instances over "
                               "an OS process pool instead of the "
                               "discrete-event simulation")
    loadtest.add_argument("--workers", type=int, default=1,
                          help="worker processes for --real (aggregates "
                               "are identical for any worker count)")
    loadtest.add_argument("--verify-workers", type=int, default=None,
                          help="threads for batched RSA verification "
                               "inside portals/TFC/audits")
    loadtest.add_argument("--json", action="store_true",
                          help="emit the full report as JSON")
    loadtest.add_argument("--trace", metavar="OUT.json", default=None,
                          help="write a Chrome trace-event file of the "
                               "run (view at https://ui.perfetto.dev)")
    loadtest.add_argument("--trace-folded", metavar="OUT.txt",
                          default=None,
                          help="write flamegraph folded stacks "
                               "(span;span;leaf microseconds)")
    loadtest.add_argument("--metrics", action="store_true",
                          help="collect the component metrics registry "
                               "and embed its snapshot in the report "
                               "(sim mode)")
    loadtest.set_defaults(func=cmd_loadtest)

    trace_report = sub.add_parser(
        "trace-report",
        help="validate + summarize a loadtest --trace file")
    trace_report.add_argument("trace_file",
                              help="Chrome trace JSON from --trace")
    trace_report.set_defaults(func=cmd_trace_report)

    evidence = sub.add_parser("evidence",
                              help="dispute evidence for one execution")
    evidence.add_argument("document")
    evidence.add_argument("--world", required=True)
    evidence.add_argument("--activity", required=True)
    evidence.add_argument("--iteration", type=int, default=0)
    evidence.add_argument("--workers", type=int, default=None,
                          help="thread-pool size for the cold audit "
                               "verification")
    evidence.set_defaults(func=cmd_evidence)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout piped into a pager/head that closed early — not an error
        return 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
