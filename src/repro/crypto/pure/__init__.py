"""From-scratch cryptographic primitives (no third-party dependencies).

Modules
-------
``sha256``
    FIPS 180-4 SHA-256.
``hmac``
    RFC 2104 HMAC-SHA256 and constant-time comparison.
``drbg``
    SP 800-90A HMAC-DRBG (seedable for deterministic tests).
``primes``
    Miller–Rabin primality testing and prime generation.
``rsa``
    RSA key generation, PKCS#1 v1.5 signatures and encryption.
``aes``
    FIPS 197 AES block cipher.
``modes``
    CBC/CTR modes, PKCS#7 padding, and encrypt-then-MAC sealing.
"""

from .aes import AES
from .drbg import HmacDrbg
from .gcm import gcm_decrypt, gcm_encrypt, ghash
from .hmac import HMAC, constant_time_compare, hmac_sha256
from .modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_transform,
    open_sealed,
    pkcs7_pad,
    pkcs7_unpad,
    seal,
)
from .primes import generate_prime, is_probable_prime
from .rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from .sha256 import SHA256, sha256

__all__ = [
    "AES",
    "HMAC",
    "HmacDrbg",
    "RsaPrivateKey",
    "RsaPublicKey",
    "SHA256",
    "cbc_decrypt",
    "cbc_encrypt",
    "constant_time_compare",
    "ctr_transform",
    "gcm_decrypt",
    "gcm_encrypt",
    "generate_keypair",
    "ghash",
    "generate_prime",
    "hmac_sha256",
    "is_probable_prime",
    "open_sealed",
    "pkcs7_pad",
    "pkcs7_unpad",
    "seal",
    "sha256",
]
