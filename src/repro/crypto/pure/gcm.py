"""Pure-Python AES-GCM (NIST SP 800-38D).

Galois/Counter Mode from first principles: GF(2^128) multiplication
with the bit-reflected reduction polynomial, GHASH, and the GCM
encrypt/decrypt compositions with 96-bit IVs.  Checked against the
NIST GCM test vectors and against OpenSSL's AESGCM by the test suite.

This is the second authenticated-encryption algorithm of the element
encryption layer (``aes128gcm``), alongside the default
CTR+HMAC construction in :mod:`repro.crypto.pure.modes`.
"""

from __future__ import annotations

from ...errors import DecryptionError
from .aes import AES
from .hmac import constant_time_compare

__all__ = ["gcm_encrypt", "gcm_decrypt", "ghash"]

# The GCM reduction constant: x^128 + x^7 + x^2 + x + 1, bit-reflected.
_R = 0xE1000000000000000000000000000000


def _gf128_mul(x: int, y: int) -> int:
    """Multiply two elements of GF(2^128) (SP 800-38D algorithm 1).

    Operands and result are 128-bit integers in the bit-reflected
    representation GCM uses (the MSB of the integer is "bit 0").
    """
    z = 0
    v = x
    for bit in range(127, -1, -1):
        if (y >> bit) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def ghash(h: int, data: bytes) -> int:
    """GHASH_H over *data* (must be a multiple of 16 bytes)."""
    if len(data) % 16:
        raise ValueError("GHASH input must be block-aligned")
    y = 0
    for offset in range(0, len(data), 16):
        block = int.from_bytes(data[offset:offset + 16], "big")
        y = _gf128_mul(y ^ block, h)
    return y


def _pad16(data: bytes) -> bytes:
    remainder = len(data) % 16
    return data + b"\x00" * ((16 - remainder) % 16)


def _gctr(cipher: AES, initial_counter_block: bytes, data: bytes) -> bytes:
    counter = int.from_bytes(initial_counter_block, "big")
    out = bytearray()
    for offset in range(0, len(data), 16):
        keystream = cipher.encrypt_block(
            (counter % (1 << 128)).to_bytes(16, "big")
        )
        # GCM increments only the low 32 bits.
        low = (counter + 1) & 0xFFFFFFFF
        counter = (counter & ~0xFFFFFFFF) | low
        chunk = data[offset:offset + 16]
        out += bytes(a ^ b for a, b in zip(chunk, keystream))
    return bytes(out)


def _tag(cipher: AES, h: int, j0: bytes, ciphertext: bytes,
         aad: bytes) -> bytes:
    lengths = (len(aad) * 8).to_bytes(8, "big") \
        + (len(ciphertext) * 8).to_bytes(8, "big")
    s = ghash(h, _pad16(aad) + _pad16(ciphertext) + lengths)
    e_j0 = cipher.encrypt_block(j0)
    return bytes(a ^ b for a, b in zip(s.to_bytes(16, "big"), e_j0))


def _setup(key: bytes, iv: bytes) -> tuple[AES, int, bytes, bytes]:
    if len(iv) != 12:
        raise DecryptionError("GCM IV must be 96 bits")
    cipher = AES(key)
    h = int.from_bytes(cipher.encrypt_block(b"\x00" * 16), "big")
    j0 = iv + b"\x00\x00\x00\x01"
    first_counter = iv + b"\x00\x00\x00\x02"
    return cipher, h, j0, first_counter


def gcm_encrypt(key: bytes, iv: bytes, plaintext: bytes,
                aad: bytes = b"") -> tuple[bytes, bytes]:
    """AES-GCM encryption; returns ``(ciphertext, 16-byte tag)``."""
    cipher, h, j0, first_counter = _setup(key, iv)
    ciphertext = _gctr(cipher, first_counter, plaintext)
    return ciphertext, _tag(cipher, h, j0, ciphertext, aad)


def gcm_decrypt(key: bytes, iv: bytes, ciphertext: bytes, tag: bytes,
                aad: bytes = b"") -> bytes:
    """AES-GCM decryption; raises on authentication failure."""
    cipher, h, j0, first_counter = _setup(key, iv)
    expected = _tag(cipher, h, j0, ciphertext, aad)
    if not constant_time_compare(tag, expected):
        raise DecryptionError("GCM authentication tag mismatch")
    return _gctr(cipher, first_counter, ciphertext)
