"""Pure-Python AES block cipher (FIPS 197), key sizes 128/192/256.

Only the raw block transform lives here; chaining modes and padding are
in :mod:`repro.crypto.pure.modes`.  The S-box is computed at import time
from the finite-field definition rather than pasted as a magic table,
which doubles as a self-check of the GF(2^8) arithmetic.
"""

from __future__ import annotations

from ...errors import KeyError_

__all__ = ["AES"]


def _xtime(a: int) -> int:
    """Multiply by x in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11B
    return a & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    # Multiplicative inverses via exponentiation (a^254 = a^-1 in GF(2^8)).
    sbox = bytearray(256)
    inv_sbox = bytearray(256)
    for value in range(256):
        if value == 0:
            inverse = 0
        else:
            inverse = value
            # a^254 by square-and-multiply (254 = 0b11111110)
            acc = 1
            power = value
            for bit in (0, 1, 1, 1, 1, 1, 1, 1):
                if bit:
                    acc = _gf_mul(acc, power)
                power = _gf_mul(power, power)
            # The loop above computes a^(2+4+...+128) = a^254
            inverse = acc
        # Affine transformation.
        s = inverse
        x = inverse
        for _ in range(4):
            x = ((x << 1) | (x >> 7)) & 0xFF
            s ^= x
        s ^= 0x63
        sbox[value] = s
        inv_sbox[s] = value
    return bytes(sbox), bytes(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()

# Round constants for key expansion.
_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_xtime(_RCON[-1]))


class AES:
    """AES block cipher over 16-byte blocks.

    Parameters
    ----------
    key:
        16, 24, or 32 bytes selecting AES-128/192/256.
    """

    block_size = 16

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise KeyError_(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self._nk = len(key) // 4
        self._nr = self._nk + 6
        self._round_keys = self._expand_key(key)

    # -- key schedule -------------------------------------------------------

    def _expand_key(self, key: bytes) -> list[list[int]]:
        nk, nr = self._nk, self._nr
        words: list[list[int]] = [list(key[4 * i: 4 * i + 4]) for i in range(nk)]
        for i in range(nk, 4 * (nr + 1)):
            temp = list(words[i - 1])
            if i % nk == 0:
                temp = temp[1:] + temp[:1]                       # RotWord
                temp = [_SBOX[b] for b in temp]                  # SubWord
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]
            words.append([a ^ b for a, b in zip(words[i - nk], temp)])
        # Group words into 16-byte round keys (column-major state order).
        return [
            [b for word in words[4 * r: 4 * r + 4] for b in word]
            for r in range(nr + 1)
        ]

    # -- round building blocks ---------------------------------------------
    # The state is a flat list of 16 bytes in column-major order, i.e.
    # state[row + 4*col], matching the FIPS 197 input byte order.

    @staticmethod
    def _add_round_key(state: list[int], rk: list[int]) -> None:
        for i in range(16):
            state[i] ^= rk[i]

    @staticmethod
    def _sub_bytes(state: list[int], box: bytes) -> None:
        for i in range(16):
            state[i] = box[state[i]]

    @staticmethod
    def _shift_rows(state: list[int]) -> None:
        for row in range(1, 4):
            col_vals = [state[row + 4 * c] for c in range(4)]
            shifted = col_vals[row:] + col_vals[:row]
            for c in range(4):
                state[row + 4 * c] = shifted[c]

    @staticmethod
    def _inv_shift_rows(state: list[int]) -> None:
        for row in range(1, 4):
            col_vals = [state[row + 4 * c] for c in range(4)]
            shifted = col_vals[-row:] + col_vals[:-row]
            for c in range(4):
                state[row + 4 * c] = shifted[c]

    @staticmethod
    def _mix_columns(state: list[int]) -> None:
        for c in range(4):
            col = state[4 * c: 4 * c + 4]
            state[4 * c + 0] = (_gf_mul(col[0], 2) ^ _gf_mul(col[1], 3)
                                ^ col[2] ^ col[3])
            state[4 * c + 1] = (col[0] ^ _gf_mul(col[1], 2)
                                ^ _gf_mul(col[2], 3) ^ col[3])
            state[4 * c + 2] = (col[0] ^ col[1]
                                ^ _gf_mul(col[2], 2) ^ _gf_mul(col[3], 3))
            state[4 * c + 3] = (_gf_mul(col[0], 3) ^ col[1]
                                ^ col[2] ^ _gf_mul(col[3], 2))

    @staticmethod
    def _inv_mix_columns(state: list[int]) -> None:
        for c in range(4):
            col = state[4 * c: 4 * c + 4]
            state[4 * c + 0] = (_gf_mul(col[0], 14) ^ _gf_mul(col[1], 11)
                                ^ _gf_mul(col[2], 13) ^ _gf_mul(col[3], 9))
            state[4 * c + 1] = (_gf_mul(col[0], 9) ^ _gf_mul(col[1], 14)
                                ^ _gf_mul(col[2], 11) ^ _gf_mul(col[3], 13))
            state[4 * c + 2] = (_gf_mul(col[0], 13) ^ _gf_mul(col[1], 9)
                                ^ _gf_mul(col[2], 14) ^ _gf_mul(col[3], 11))
            state[4 * c + 3] = (_gf_mul(col[0], 11) ^ _gf_mul(col[1], 13)
                                ^ _gf_mul(col[2], 9) ^ _gf_mul(col[3], 14))

    # -- public block API -----------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != 16:
            raise KeyError_("AES block must be exactly 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[0])
        for rnd in range(1, self._nr):
            self._sub_bytes(state, _SBOX)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[rnd])
        self._sub_bytes(state, _SBOX)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self._nr])
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != 16:
            raise KeyError_("AES block must be exactly 16 bytes")
        state = list(block)
        self._add_round_key(state, self._round_keys[self._nr])
        for rnd in range(self._nr - 1, 0, -1):
            self._inv_shift_rows(state)
            self._sub_bytes(state, _INV_SBOX)
            self._add_round_key(state, self._round_keys[rnd])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._sub_bytes(state, _INV_SBOX)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)
