"""Pure-Python RSA: key generation, PKCS#1 v1.5 signatures and encryption.

This module is self-contained (no third-party crypto).  It provides the
three operations DRA4WfMS needs:

* ``sign`` / ``verify`` — RSASSA-PKCS1-v1_5 with SHA-256, used for the
  cascaded signatures embedded in DRA4WfMS documents;
* ``encrypt`` / ``decrypt`` — RSAES-PKCS1-v1_5, used to wrap the
  per-element AES data keys for each authorised reader;
* ``generate_keypair`` — Miller–Rabin based key generation with CRT
  private operations.

The fast backend exposes the same API on top of the ``cryptography``
wheel; the test suite asserts the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...errors import DecryptionError, KeyError_, SignatureError
from .drbg import HmacDrbg
from .primes import generate_prime
from .sha256 import sha256

__all__ = ["RsaPublicKey", "RsaPrivateKey", "generate_keypair"]

# DER prefix of the DigestInfo structure for SHA-256
# (RFC 8017 section 9.2 note 1).
_SHA256_DIGESTINFO = bytes.fromhex(
    "3031300d060960864801650304020105000420"
)

_F4 = 65537
_HLEN = 32          # SHA-256 output size
_PSS_SALT_LEN = 32  # RFC 8017 recommended sLen = hLen


def _mgf1(seed: bytes, mask_length: int) -> bytes:
    """MGF1 mask generation with SHA-256 (RFC 8017 appendix B.2.1)."""
    out = bytearray()
    counter = 0
    while len(out) < mask_length:
        out += sha256(seed + counter.to_bytes(4, "big"))
        counter += 1
    return bytes(out[:mask_length])


def _emsa_pss_encode(message: bytes, em_bits: int, salt: bytes) -> bytes:
    """EMSA-PSS encoding (RFC 8017 section 9.1.1)."""
    em_length = (em_bits + 7) // 8
    m_hash = sha256(message)
    if em_length < _HLEN + len(salt) + 2:
        raise KeyError_("RSA modulus too small for PSS encoding")
    h = sha256(b"\x00" * 8 + m_hash + salt)
    ps = b"\x00" * (em_length - len(salt) - _HLEN - 2)
    db = ps + b"\x01" + salt
    db_mask = _mgf1(h, em_length - _HLEN - 1)
    masked_db = bytearray(a ^ b for a, b in zip(db, db_mask))
    # Clear the leftmost 8*emLen - emBits bits.
    masked_db[0] &= 0xFF >> (8 * em_length - em_bits)
    return bytes(masked_db) + h + b"\xbc"


def _emsa_pss_verify(message: bytes, em: bytes, em_bits: int) -> bool:
    """EMSA-PSS verification (RFC 8017 section 9.1.2)."""
    em_length = (em_bits + 7) // 8
    m_hash = sha256(message)
    if em_length < _HLEN + _PSS_SALT_LEN + 2 or em[-1] != 0xBC:
        return False
    masked_db = em[: em_length - _HLEN - 1]
    h = em[em_length - _HLEN - 1: em_length - 1]
    top_bits = 8 * em_length - em_bits
    if top_bits and masked_db[0] >> (8 - top_bits):
        return False
    db = bytearray(
        a ^ b for a, b in zip(masked_db, _mgf1(h, len(masked_db)))
    )
    if top_bits:
        db[0] &= 0xFF >> top_bits
    separator = em_length - _HLEN - _PSS_SALT_LEN - 2
    if any(db[:separator]) or db[separator] != 0x01:
        return False
    salt = bytes(db[separator + 1:])
    return sha256(b"\x00" * 8 + m_hash + salt) == h


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        """Modulus size in bits."""
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        """Modulus size in bytes (the size of every RSA output)."""
        return (self.n.bit_length() + 7) // 8

    def fingerprint(self) -> str:
        """Stable hex identifier for the key (SHA-256 of ``n || e``)."""
        blob = self.n.to_bytes(self.byte_length, "big") + self.e.to_bytes(4, "big")
        return sha256(blob).hex()[:32]

    # -- verification ------------------------------------------------------

    def verify(self, message: bytes, signature: bytes) -> None:
        """Verify an RSASSA-PKCS1-v1_5/SHA-256 *signature* over *message*.

        Raises :class:`~repro.errors.SignatureError` on any mismatch.
        """
        k = self.byte_length
        if len(signature) != k:
            raise SignatureError("signature length does not match modulus")
        s = int.from_bytes(signature, "big")
        if s >= self.n:
            raise SignatureError("signature representative out of range")
        em = pow(s, self.e, self.n).to_bytes(k, "big")
        expected = _emsa_pkcs1_v15(message, k)
        if em != expected:
            raise SignatureError("signature does not verify")

    def verify_pss(self, message: bytes, signature: bytes) -> None:
        """Verify an RSASSA-PSS/SHA-256 signature (MGF1, 32-byte salt)."""
        k = self.byte_length
        if len(signature) != k:
            raise SignatureError("signature length does not match modulus")
        s = int.from_bytes(signature, "big")
        if s >= self.n:
            raise SignatureError("signature representative out of range")
        em_bits = self.n.bit_length() - 1
        em_length = (em_bits + 7) // 8
        em = pow(s, self.e, self.n).to_bytes(em_length, "big")
        if not _emsa_pss_verify(message, em, em_bits):
            raise SignatureError("PSS signature does not verify")

    # -- encryption --------------------------------------------------------

    def encrypt(self, plaintext: bytes, rng: HmacDrbg | None = None) -> bytes:
        """RSAES-PKCS1-v1_5 encryption of a short *plaintext* (e.g. a key)."""
        k = self.byte_length
        if len(plaintext) > k - 11:
            raise KeyError_(
                f"plaintext too long for RSA-{self.bits} "
                f"({len(plaintext)} > {k - 11} bytes)"
            )
        if rng is None:
            rng = HmacDrbg()
        # PS: nonzero random padding bytes.
        ps = bytearray()
        while len(ps) < k - 3 - len(plaintext):
            chunk = rng.generate(k)
            ps += bytes(b for b in chunk if b != 0)
        em = b"\x00\x02" + bytes(ps[: k - 3 - len(plaintext)]) + b"\x00" + plaintext
        m = int.from_bytes(em, "big")
        return pow(m, self.e, self.n).to_bytes(k, "big")


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key with CRT parameters."""

    n: int
    e: int
    d: int
    p: int
    q: int

    def __post_init__(self) -> None:
        if self.p * self.q != self.n:
            raise KeyError_("inconsistent RSA private key: p*q != n")

    @property
    def public_key(self) -> RsaPublicKey:
        """The matching public key."""
        return RsaPublicKey(self.n, self.e)

    @property
    def byte_length(self) -> int:
        """Modulus size in bytes."""
        return (self.n.bit_length() + 7) // 8

    # -- CRT private operation --------------------------------------------

    def _private_op(self, c: int) -> int:
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        qinv = pow(self.q, -1, self.p)
        m1 = pow(c % self.p, dp, self.p)
        m2 = pow(c % self.q, dq, self.q)
        h = (qinv * (m1 - m2)) % self.p
        return m2 + h * self.q

    # -- signing -----------------------------------------------------------

    def sign(self, message: bytes) -> bytes:
        """Produce an RSASSA-PKCS1-v1_5/SHA-256 signature over *message*."""
        k = self.byte_length
        em = _emsa_pkcs1_v15(message, k)
        m = int.from_bytes(em, "big")
        return self._private_op(m).to_bytes(k, "big")

    def sign_pss(self, message: bytes,
                 rng: HmacDrbg | None = None) -> bytes:
        """RSASSA-PSS/SHA-256 signature with a fresh 32-byte salt."""
        if rng is None:
            rng = HmacDrbg()
        em_bits = self.n.bit_length() - 1
        em = _emsa_pss_encode(message, em_bits,
                              rng.generate(_PSS_SALT_LEN))
        m = int.from_bytes(em, "big")
        return self._private_op(m).to_bytes(self.byte_length, "big")

    # -- decryption ---------------------------------------------------------

    def decrypt(self, ciphertext: bytes) -> bytes:
        """RSAES-PKCS1-v1_5 decryption; raises on malformed padding."""
        k = self.byte_length
        if len(ciphertext) != k:
            raise DecryptionError("ciphertext length does not match modulus")
        c = int.from_bytes(ciphertext, "big")
        if c >= self.n:
            raise DecryptionError("ciphertext representative out of range")
        em = self._private_op(c).to_bytes(k, "big")
        if em[0] != 0 or em[1] != 2:
            raise DecryptionError("invalid PKCS#1 v1.5 padding")
        try:
            sep = em.index(b"\x00", 2)
        except ValueError:
            raise DecryptionError("invalid PKCS#1 v1.5 padding") from None
        if sep < 10:
            raise DecryptionError("invalid PKCS#1 v1.5 padding")
        return em[sep + 1:]


def _emsa_pkcs1_v15(message: bytes, k: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of SHA-256(message) into *k* bytes."""
    t = _SHA256_DIGESTINFO + sha256(message)
    if k < len(t) + 11:
        raise KeyError_("RSA modulus too small for SHA-256 signatures")
    return b"\x00\x01" + b"\xff" * (k - len(t) - 3) + b"\x00" + t


def generate_keypair(bits: int = 2048,
                     rng: HmacDrbg | None = None) -> RsaPrivateKey:
    """Generate an RSA key pair with a *bits*-bit modulus.

    Pass a seeded :class:`HmacDrbg` to make generation deterministic
    (used by the test suite and the simulated participant directory).
    """
    if bits < 512:
        raise KeyError_("refusing to generate RSA keys below 512 bits")
    if bits % 2:
        raise KeyError_("RSA modulus size must be even")
    if rng is None:
        rng = HmacDrbg()
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % _F4 == 0:
            continue
        d = pow(_F4, -1, phi)
        return RsaPrivateKey(n=n, e=_F4, d=d, p=p, q=q)
