"""Pure-Python HMAC (RFC 2104) over the pure SHA-256.

Used by the encrypt-then-MAC authenticated-encryption mode and by the
HMAC-DRBG deterministic random bit generator.
"""

from __future__ import annotations

from .sha256 import SHA256

__all__ = ["HMAC", "hmac_sha256", "constant_time_compare"]

_IPAD = 0x36
_OPAD = 0x5C


class HMAC:
    """Incremental HMAC-SHA256."""

    digest_size = 32
    block_size = 64

    def __init__(self, key: bytes, msg: bytes = b"") -> None:
        if len(key) > self.block_size:
            key = SHA256(key).digest()
        key = key.ljust(self.block_size, b"\x00")
        self._outer_key = bytes(b ^ _OPAD for b in key)
        self._inner = SHA256(bytes(b ^ _IPAD for b in key))
        if msg:
            self.update(msg)

    def update(self, msg: bytes) -> None:
        """Absorb *msg* into the MAC state."""
        self._inner.update(msg)

    def copy(self) -> "HMAC":
        """Return an independent copy of the MAC state."""
        clone = HMAC.__new__(HMAC)
        clone._outer_key = self._outer_key
        clone._inner = self._inner.copy()
        return clone

    def digest(self) -> bytes:
        """Return the 32-byte authentication tag."""
        return SHA256(self._outer_key + self._inner.digest()).digest()

    def hexdigest(self) -> str:
        """Return the tag as lowercase hex."""
        return self.digest().hex()


def hmac_sha256(key: bytes, msg: bytes) -> bytes:
    """One-shot HMAC-SHA256 tag of *msg* under *key*."""
    return HMAC(key, msg).digest()


def constant_time_compare(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without data-dependent early exit.

    The comparison time depends only on the lengths of the inputs,
    preventing the byte-by-byte timing oracle that a naive ``==`` on
    attacker-controlled MACs would expose.
    """
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0
