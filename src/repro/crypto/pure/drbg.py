"""HMAC-DRBG (NIST SP 800-90A) over HMAC-SHA256.

The DRBG serves two purposes in this reproduction:

* deterministic key generation in tests (seeded, reproducible runs), and
* a from-scratch random source for the pure backend, seeded from
  :func:`secrets.token_bytes` when no explicit entropy is supplied.
"""

from __future__ import annotations

import secrets

from .hmac import hmac_sha256

__all__ = ["HmacDrbg"]


class HmacDrbg:
    """Deterministic random bit generator per SP 800-90A HMAC_DRBG.

    Parameters
    ----------
    entropy:
        Seed material.  When ``None``, 48 bytes of OS entropy are drawn,
        making the generator non-deterministic (the production mode).
    personalization:
        Optional domain-separation string mixed into the seed.
    """

    # SP 800-90A allows 2**48 generate calls between reseeds; we reseed
    # far earlier out of caution.
    _RESEED_INTERVAL = 1 << 24

    def __init__(self, entropy: bytes | None = None,
                 personalization: bytes = b"") -> None:
        if entropy is None:
            entropy = secrets.token_bytes(48)
            self._deterministic = False
        else:
            self._deterministic = True
        self._key = b"\x00" * 32
        self._value = b"\x01" * 32
        self._reseed_counter = 1
        self._update(entropy + personalization)

    @property
    def deterministic(self) -> bool:
        """``True`` when the generator was explicitly seeded."""
        return self._deterministic

    def reseed(self, entropy: bytes) -> None:
        """Mix fresh *entropy* into the generator state."""
        self._update(entropy)
        self._reseed_counter = 1

    def generate(self, nbytes: int) -> bytes:
        """Return *nbytes* pseudo-random bytes."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self._reseed_counter > self._RESEED_INTERVAL:
            if self._deterministic:
                # Deterministic generators reseed from their own stream
                # so replayed runs stay reproducible.
                self._update(b"auto-reseed")
                self._reseed_counter = 1
            else:
                self.reseed(secrets.token_bytes(48))
        out = bytearray()
        while len(out) < nbytes:
            self._value = hmac_sha256(self._key, self._value)
            out += self._value
        self._update(b"")
        self._reseed_counter += 1
        return bytes(out[:nbytes])

    def randbelow(self, upper: int) -> int:
        """Return a uniform integer in ``[0, upper)`` by rejection sampling."""
        if upper <= 0:
            raise ValueError("upper must be positive")
        nbits = upper.bit_length()
        nbytes = (nbits + 7) // 8
        excess = nbytes * 8 - nbits
        while True:
            candidate = int.from_bytes(self.generate(nbytes), "big") >> excess
            if candidate < upper:
                return candidate

    def randbits(self, nbits: int) -> int:
        """Return an integer with exactly *nbits* random bits (MSB set)."""
        if nbits <= 0:
            raise ValueError("nbits must be positive")
        nbytes = (nbits + 7) // 8
        value = int.from_bytes(self.generate(nbytes), "big")
        value >>= nbytes * 8 - nbits
        return value | (1 << (nbits - 1))

    # -- internals ---------------------------------------------------------

    def _update(self, provided: bytes) -> None:
        self._key = hmac_sha256(self._key, self._value + b"\x00" + provided)
        self._value = hmac_sha256(self._key, self._value)
        if provided:
            self._key = hmac_sha256(self._key, self._value + b"\x01" + provided)
            self._value = hmac_sha256(self._key, self._value)
