"""Prime generation for RSA key generation.

Implements trial division over a small prime table followed by the
Miller–Rabin probabilistic primality test, driven by an
:class:`~repro.crypto.pure.drbg.HmacDrbg` so key generation can be made
deterministic in tests.
"""

from __future__ import annotations

from .drbg import HmacDrbg

__all__ = ["is_probable_prime", "generate_prime", "SMALL_PRIMES"]


def _sieve(limit: int) -> list[int]:
    flags = bytearray([1]) * (limit + 1)
    flags[0:2] = b"\x00\x00"
    for p in range(2, int(limit ** 0.5) + 1):
        if flags[p]:
            flags[p * p:: p] = b"\x00" * len(range(p * p, limit + 1, p))
    return [i for i, f in enumerate(flags) if f]


#: Primes below 2000, used for cheap trial division before Miller–Rabin.
SMALL_PRIMES: tuple[int, ...] = tuple(_sieve(2000))


def is_probable_prime(n: int, rng: HmacDrbg | None = None,
                      rounds: int = 40) -> bool:
    """Miller–Rabin primality test.

    With 40 random rounds the probability that a composite passes is at
    most ``4**-40``, far below the RSA security level used here.
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if rng is None:
        rng = HmacDrbg()

    # Write n-1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    for _ in range(rounds):
        a = 2 + rng.randbelow(n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: HmacDrbg | None = None) -> int:
    """Generate a random prime with exactly *bits* bits.

    The two most significant bits are forced to 1 so that the product of
    two such primes has exactly ``2 * bits`` bits — the usual RSA trick
    guaranteeing the modulus size.
    """
    if bits < 16:
        raise ValueError("refusing to generate primes below 16 bits")
    if rng is None:
        rng = HmacDrbg()
    while True:
        candidate = rng.randbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if is_probable_prime(candidate, rng):
            return candidate
