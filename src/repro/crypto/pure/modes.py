"""Chaining modes and authenticated encryption over the pure AES core.

Provides:

* PKCS#7 padding helpers,
* AES-CBC and AES-CTR,
* :func:`seal` / :func:`open_sealed` — encrypt-then-MAC authenticated
  encryption (AES-CTR + HMAC-SHA256), the construction used for every
  element-wise encrypted value in a DRA4WfMS document.
"""

from __future__ import annotations

from ...errors import DecryptionError
from .aes import AES
from .drbg import HmacDrbg
from .hmac import constant_time_compare, hmac_sha256
from .sha256 import sha256

__all__ = [
    "pkcs7_pad", "pkcs7_unpad",
    "cbc_encrypt", "cbc_decrypt",
    "ctr_transform",
    "seal", "open_sealed",
]

_BLOCK = 16


def pkcs7_pad(data: bytes, block: int = _BLOCK) -> bytes:
    """Pad *data* to a multiple of *block* bytes (PKCS#7)."""
    n = block - (len(data) % block)
    return data + bytes([n]) * n


def pkcs7_unpad(data: bytes, block: int = _BLOCK) -> bytes:
    """Strip PKCS#7 padding, raising on malformed input."""
    if not data or len(data) % block:
        raise DecryptionError("ciphertext not a whole number of blocks")
    n = data[-1]
    if not 1 <= n <= block or data[-n:] != bytes([n]) * n:
        raise DecryptionError("invalid PKCS#7 padding")
    return data[:-n]


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """AES-CBC encrypt with PKCS#7 padding."""
    if len(iv) != _BLOCK:
        raise DecryptionError("CBC IV must be 16 bytes")
    cipher = AES(key)
    data = pkcs7_pad(plaintext)
    out = bytearray()
    prev = iv
    for i in range(0, len(data), _BLOCK):
        block = bytes(a ^ b for a, b in zip(data[i:i + _BLOCK], prev))
        prev = cipher.encrypt_block(block)
        out += prev
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """AES-CBC decrypt and strip PKCS#7 padding."""
    if len(iv) != _BLOCK:
        raise DecryptionError("CBC IV must be 16 bytes")
    if len(ciphertext) % _BLOCK:
        raise DecryptionError("ciphertext not a whole number of blocks")
    cipher = AES(key)
    out = bytearray()
    prev = iv
    for i in range(0, len(ciphertext), _BLOCK):
        block = ciphertext[i:i + _BLOCK]
        plain = cipher.decrypt_block(block)
        out += bytes(a ^ b for a, b in zip(plain, prev))
        prev = block
    return pkcs7_unpad(bytes(out))


def ctr_transform(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """AES-CTR keystream XOR (encryption and decryption are identical).

    *nonce* is 16 bytes; the whole block is treated as a big-endian
    counter, incremented per block.
    """
    if len(nonce) != _BLOCK:
        raise DecryptionError("CTR nonce must be 16 bytes")
    cipher = AES(key)
    counter = int.from_bytes(nonce, "big")
    out = bytearray()
    for i in range(0, len(data), _BLOCK):
        keystream = cipher.encrypt_block(
            (counter % (1 << 128)).to_bytes(_BLOCK, "big")
        )
        counter += 1
        chunk = data[i:i + _BLOCK]
        out += bytes(a ^ b for a, b in zip(chunk, keystream))
    return bytes(out)


def _derive_subkeys(key: bytes) -> tuple[bytes, bytes]:
    """Derive independent encryption and MAC keys from a master key."""
    enc_key = sha256(b"repro.enc\x00" + key)[:16]
    mac_key = sha256(b"repro.mac\x00" + key)
    return enc_key, mac_key


def seal(key: bytes, plaintext: bytes, aad: bytes = b"",
         rng: HmacDrbg | None = None) -> bytes:
    """Authenticated encryption: ``nonce || ciphertext || tag``.

    Encrypt-then-MAC with AES-128-CTR and HMAC-SHA256 (truncated to 16
    bytes).  *aad* is authenticated but not encrypted — DRA4WfMS binds
    the element name and recipient list this way.
    """
    if rng is None:
        rng = HmacDrbg()
    enc_key, mac_key = _derive_subkeys(key)
    nonce = rng.generate(_BLOCK)
    ciphertext = ctr_transform(enc_key, nonce, plaintext)
    tag = hmac_sha256(
        mac_key,
        len(aad).to_bytes(8, "big") + aad + nonce + ciphertext,
    )[:16]
    return nonce + ciphertext + tag


def open_sealed(key: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
    """Verify and decrypt the output of :func:`seal`.

    Raises :class:`~repro.errors.DecryptionError` when the MAC does not
    verify (wrong key, altered ciphertext, or altered AAD).
    """
    if len(sealed) < _BLOCK + 16:
        raise DecryptionError("sealed blob too short")
    enc_key, mac_key = _derive_subkeys(key)
    nonce, body, tag = sealed[:_BLOCK], sealed[_BLOCK:-16], sealed[-16:]
    expected = hmac_sha256(
        mac_key,
        len(aad).to_bytes(8, "big") + aad + nonce + body,
    )[:16]
    if not constant_time_compare(tag, expected):
        raise DecryptionError("authentication tag mismatch")
    return ctr_transform(enc_key, nonce, body)
