"""Cryptographic substrate: pure primitives, pluggable backends, keys, PKI.

The DRA4WfMS security framework rests on three operations — digital
signatures (the cascade), hybrid element-wise encryption (data keys
wrapped per reader), and digests — all routed through a
:class:`~repro.crypto.backend.CryptoBackend` so the whole stack runs on
either the from-scratch primitives or the ``cryptography`` wheel.
"""

from .backend import (
    DATA_KEY_BYTES,
    CryptoBackend,
    PureBackend,
    default_backend,
    set_default_backend,
)
from .keys import (
    KeyPair,
    private_key_from_dict,
    private_key_to_dict,
    public_key_from_dict,
    public_key_to_dict,
)
from .pki import Certificate, CertificateAuthority, KeyDirectory
from .pure.rsa import RsaPrivateKey, RsaPublicKey

__all__ = [
    "DATA_KEY_BYTES",
    "Certificate",
    "CertificateAuthority",
    "CryptoBackend",
    "KeyDirectory",
    "KeyPair",
    "PureBackend",
    "RsaPrivateKey",
    "RsaPublicKey",
    "default_backend",
    "private_key_from_dict",
    "private_key_to_dict",
    "public_key_from_dict",
    "public_key_to_dict",
    "set_default_backend",
]
