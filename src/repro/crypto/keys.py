"""Key-pair handling and serialization.

A :class:`KeyPair` binds an RSA key pair to a participant identity
(e.g. ``"peter@acme"``).  Keys serialize to a plain JSON-safe mapping of
hex-encoded integers so they can be stored in the simulated cloud
substrate or shipped between processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import KeyError_
from .backend import CryptoBackend, default_backend
from .pure.rsa import RsaPrivateKey, RsaPublicKey

__all__ = [
    "KeyPair",
    "public_key_to_dict",
    "public_key_from_dict",
    "private_key_to_dict",
    "private_key_from_dict",
]


def public_key_to_dict(key: RsaPublicKey) -> dict[str, str]:
    """Serialize a public key to a JSON-safe mapping."""
    return {"kty": "RSA", "n": hex(key.n), "e": hex(key.e)}


def public_key_from_dict(data: dict[str, str]) -> RsaPublicKey:
    """Deserialize a public key produced by :func:`public_key_to_dict`."""
    try:
        if data["kty"] != "RSA":
            raise KeyError_(f"unsupported key type {data['kty']!r}")
        return RsaPublicKey(n=int(data["n"], 16), e=int(data["e"], 16))
    except (KeyError, ValueError) as exc:
        raise KeyError_(f"malformed public key mapping: {exc}") from exc


def private_key_to_dict(key: RsaPrivateKey) -> dict[str, str]:
    """Serialize a private key (including CRT primes) to a mapping."""
    return {
        "kty": "RSA",
        "n": hex(key.n),
        "e": hex(key.e),
        "d": hex(key.d),
        "p": hex(key.p),
        "q": hex(key.q),
    }


def private_key_from_dict(data: dict[str, str]) -> RsaPrivateKey:
    """Deserialize a private key produced by :func:`private_key_to_dict`."""
    try:
        if data["kty"] != "RSA":
            raise KeyError_(f"unsupported key type {data['kty']!r}")
        return RsaPrivateKey(
            n=int(data["n"], 16),
            e=int(data["e"], 16),
            d=int(data["d"], 16),
            p=int(data["p"], 16),
            q=int(data["q"], 16),
        )
    except (KeyError, ValueError) as exc:
        raise KeyError_(f"malformed private key mapping: {exc}") from exc


@dataclass
class KeyPair:
    """An identity plus its RSA key pair.

    Participants, workflow designers, TFC servers and certificate
    authorities are all represented this way.
    """

    identity: str
    private_key: RsaPrivateKey = field(repr=False)

    @property
    def public_key(self) -> RsaPublicKey:
        """The public half of the pair."""
        return self.private_key.public_key

    @classmethod
    def generate(cls, identity: str, bits: int = 2048,
                 backend: CryptoBackend | None = None) -> "KeyPair":
        """Generate a fresh key pair for *identity*."""
        backend = backend or default_backend()
        return cls(identity=identity, private_key=backend.generate_keypair(bits))

    def sign(self, message: bytes,
             backend: CryptoBackend | None = None) -> bytes:
        """Sign *message* with this identity's private key."""
        backend = backend or default_backend()
        return backend.sign(self.private_key, message)

    def to_dict(self) -> dict[str, object]:
        """Serialize identity and private key to a mapping."""
        return {
            "identity": self.identity,
            "key": private_key_to_dict(self.private_key),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "KeyPair":
        """Deserialize the output of :meth:`to_dict`."""
        return cls(
            identity=str(data["identity"]),
            private_key=private_key_from_dict(data["key"]),  # type: ignore[arg-type]
        )
