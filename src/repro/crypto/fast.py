"""Fast crypto backend delegating to the ``cryptography`` wheel.

Exposes exactly the :class:`~repro.crypto.backend.CryptoBackend`
protocol over OpenSSL-backed primitives.  Keys remain the plain integer
dataclasses from :mod:`repro.crypto.pure.rsa`, so documents produced by
the pure backend verify here and vice versa — the property tests in
``tests/crypto/test_cross_backend.py`` rely on this.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
import os
from concurrent.futures import ThreadPoolExecutor

from cryptography.exceptions import InvalidSignature
from cryptography.hazmat.primitives import hashes
from cryptography.hazmat.primitives.asymmetric import padding, rsa
from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes

from ..errors import DecryptionError, KeyError_, SignatureError
from .pure.rsa import RsaPrivateKey, RsaPublicKey

__all__ = ["FastBackend"]


def _to_lib_private(key: RsaPrivateKey) -> rsa.RSAPrivateKey:
    p, q, d, n, e = key.p, key.q, key.d, key.n, key.e
    iqmp = rsa.rsa_crt_iqmp(p, q)
    dmp1 = rsa.rsa_crt_dmp1(d, p)
    dmq1 = rsa.rsa_crt_dmq1(d, q)
    pub = rsa.RSAPublicNumbers(e, n)
    return rsa.RSAPrivateNumbers(p, q, d, dmp1, dmq1, iqmp, pub).private_key()


def _to_lib_public(key: RsaPublicKey) -> rsa.RSAPublicKey:
    return rsa.RSAPublicNumbers(key.e, key.n).public_key()


class FastBackend:
    """OpenSSL-backed implementation of the backend protocol.

    RSA keys converted from the integer dataclasses are memoised per
    fingerprint because the conversion (CRT parameter recomputation) is
    itself significant compared to a signature.
    """

    name = "fast"

    def __init__(self) -> None:
        self._priv_cache: dict[int, rsa.RSAPrivateKey] = {}
        self._pub_cache: dict[tuple[int, int], rsa.RSAPublicKey] = {}

    # -- conversions (memoised) ---------------------------------------------

    def _priv(self, key: RsaPrivateKey) -> rsa.RSAPrivateKey:
        cached = self._priv_cache.get(key.n)
        if cached is None:
            cached = self._priv_cache[key.n] = _to_lib_private(key)
        return cached

    def _pub(self, key: RsaPublicKey) -> rsa.RSAPublicKey:
        cached = self._pub_cache.get((key.n, key.e))
        if cached is None:
            cached = self._pub_cache[(key.n, key.e)] = _to_lib_public(key)
        return cached

    # -- protocol -------------------------------------------------------------

    def digest(self, data: bytes) -> bytes:
        return hashlib.sha256(data).digest()

    def random(self, nbytes: int) -> bytes:
        return os.urandom(nbytes)

    def generate_keypair(self, bits: int = 2048) -> RsaPrivateKey:
        if bits < 512:
            raise KeyError_("refusing to generate RSA keys below 512 bits")
        key = rsa.generate_private_key(public_exponent=65537, key_size=bits)
        numbers = key.private_numbers()
        return RsaPrivateKey(
            n=numbers.public_numbers.n,
            e=numbers.public_numbers.e,
            d=numbers.d,
            p=numbers.p,
            q=numbers.q,
        )

    def sign(self, key: RsaPrivateKey, message: bytes) -> bytes:
        return self._priv(key).sign(message, padding.PKCS1v15(), hashes.SHA256())

    def verify(self, key: RsaPublicKey, message: bytes, signature: bytes) -> None:
        try:
            self._pub(key).verify(
                signature, message, padding.PKCS1v15(), hashes.SHA256()
            )
        except InvalidSignature as exc:
            raise SignatureError("signature does not verify") from exc

    def sign_pss(self, key: RsaPrivateKey, message: bytes) -> bytes:
        return self._priv(key).sign(
            message,
            padding.PSS(mgf=padding.MGF1(hashes.SHA256()), salt_length=32),
            hashes.SHA256(),
        )

    def verify_pss(self, key: RsaPublicKey, message: bytes,
                   signature: bytes) -> None:
        try:
            self._pub(key).verify(
                signature, message,
                padding.PSS(mgf=padding.MGF1(hashes.SHA256()),
                            salt_length=32),
                hashes.SHA256(),
            )
        except InvalidSignature as exc:
            raise SignatureError("PSS signature does not verify") from exc

    def verify_batch(self, jobs, workers=None):
        from .backend import _verify_one

        # Convert every key up front on the calling thread: the memo
        # dicts are only GIL-safe, and a warm cache means the pooled
        # checks below go straight into OpenSSL (which releases the GIL
        # for the modular exponentiation — threads genuinely overlap).
        for public_key, _, _, _ in jobs:
            self._pub(public_key)
        if workers is None or workers <= 1 or len(jobs) <= 1:
            return [_verify_one(self, job) for job in jobs]
        with ThreadPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            return list(pool.map(lambda job: _verify_one(self, job), jobs))

    def wrap_key(self, key: RsaPublicKey, data_key: bytes) -> bytes:
        return self._pub(key).encrypt(data_key, padding.PKCS1v15())

    def unwrap_key(self, key: RsaPrivateKey, wrapped: bytes) -> bytes:
        try:
            return self._priv(key).decrypt(wrapped, padding.PKCS1v15())
        except ValueError as exc:
            raise DecryptionError("RSA unwrap failed") from exc

    # Symmetric sealing mirrors the byte layout of the pure backend
    # (nonce || AES-CTR ciphertext || 16-byte HMAC tag with the same
    # derived sub-keys), so sealed blobs are backend-portable.

    def seal(self, data_key: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        enc_key = hashlib.sha256(b"repro.enc\x00" + data_key).digest()[:16]
        mac_key = hashlib.sha256(b"repro.mac\x00" + data_key).digest()
        nonce = os.urandom(16)
        enc = Cipher(algorithms.AES(enc_key), modes.CTR(nonce)).encryptor()
        ciphertext = enc.update(plaintext) + enc.finalize()
        tag = _hmac.new(
            mac_key,
            len(aad).to_bytes(8, "big") + aad + nonce + ciphertext,
            hashlib.sha256,
        ).digest()[:16]
        return nonce + ciphertext + tag

    def open_sealed(self, data_key: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        if len(sealed) < 32:
            raise DecryptionError("sealed blob too short")
        enc_key = hashlib.sha256(b"repro.enc\x00" + data_key).digest()[:16]
        mac_key = hashlib.sha256(b"repro.mac\x00" + data_key).digest()
        nonce, body, tag = sealed[:16], sealed[16:-16], sealed[-16:]
        expected = _hmac.new(
            mac_key,
            len(aad).to_bytes(8, "big") + aad + nonce + body,
            hashlib.sha256,
        ).digest()[:16]
        if not _hmac.compare_digest(tag, expected):
            raise DecryptionError("authentication tag mismatch")
        dec = Cipher(algorithms.AES(enc_key), modes.CTR(nonce)).decryptor()
        return dec.update(body) + dec.finalize()

    def seal_gcm(self, data_key: bytes, plaintext: bytes,
                 aad: bytes = b"") -> bytes:
        from cryptography.hazmat.primitives.ciphers.aead import AESGCM

        iv = os.urandom(12)
        return iv + AESGCM(data_key).encrypt(iv, plaintext, aad)

    def open_gcm(self, data_key: bytes, sealed: bytes,
                 aad: bytes = b"") -> bytes:
        from cryptography.exceptions import InvalidTag
        from cryptography.hazmat.primitives.ciphers.aead import AESGCM

        if len(sealed) < 28:
            raise DecryptionError("GCM blob too short")
        try:
            return AESGCM(data_key).decrypt(sealed[:12], sealed[12:], aad)
        except InvalidTag as exc:
            raise DecryptionError("GCM authentication tag mismatch") from exc
