"""Pluggable crypto backend protocol and the pure-Python implementation.

Every higher layer (XML security, documents, runtime) performs crypto
exclusively through a :class:`CryptoBackend`, so the whole system can run
either on the from-scratch primitives (:class:`PureBackend`) or on the
``cryptography`` wheel (:class:`repro.crypto.fast.FastBackend`) without
any other code change.  The test suite runs both and asserts they
interoperate (documents signed by one verify under the other).
"""

from __future__ import annotations

import secrets
from typing import Protocol, runtime_checkable

from .pure.drbg import HmacDrbg
from .pure.modes import open_sealed, seal
from .pure.rsa import RsaPrivateKey, RsaPublicKey, generate_keypair
from .pure.sha256 import sha256

__all__ = [
    "CryptoBackend",
    "PureBackend",
    "VerifyJob",
    "default_backend",
    "dispatch_verify_batch",
    "sequential_verify_batch",
    "set_default_backend",
]

#: Symmetric data-key size in bytes (AES-128) used for element encryption.
DATA_KEY_BYTES = 16

#: One batched verification job: ``(public_key, message, signature,
#: algorithm)`` where *algorithm* is ``"pkcs1v15"`` or ``"pss"``.
VerifyJob = tuple[RsaPublicKey, bytes, bytes, str]


@runtime_checkable
class CryptoBackend(Protocol):
    """Operations the DRA4WfMS stack needs from a crypto provider."""

    name: str

    def digest(self, data: bytes) -> bytes:
        """SHA-256 digest of *data*."""

    def random(self, nbytes: int) -> bytes:
        """*nbytes* of cryptographically strong randomness."""

    def generate_keypair(self, bits: int = 2048) -> RsaPrivateKey:
        """Generate a fresh RSA key pair."""

    def sign(self, key: RsaPrivateKey, message: bytes) -> bytes:
        """RSASSA-PKCS1-v1_5/SHA-256 signature over *message*."""

    def verify(self, key: RsaPublicKey, message: bytes, signature: bytes) -> None:
        """Verify a signature; raise ``SignatureError`` on mismatch."""

    def sign_pss(self, key: RsaPrivateKey, message: bytes) -> bytes:
        """RSASSA-PSS/SHA-256 signature (randomised, MGF1, 32-byte salt)."""

    def verify_pss(self, key: RsaPublicKey, message: bytes,
                   signature: bytes) -> None:
        """Verify a PSS signature; raise ``SignatureError`` on mismatch."""

    def verify_batch(self, jobs: "list[VerifyJob]",
                     workers: int | None = None) -> list[Exception | None]:
        """Verify many signatures in one dispatch.

        Returns one entry per job, in job order: ``None`` for a valid
        signature, the verification exception otherwise.  Never raises
        for an invalid signature — batching must not change *which*
        failure a caller surfaces, so every outcome is reported in
        place.  *workers* is a hint: implementations may fan the
        independent checks across that many threads.
        """

    def wrap_key(self, key: RsaPublicKey, data_key: bytes) -> bytes:
        """Encrypt a symmetric data key to *key* (RSAES-PKCS1-v1_5)."""

    def unwrap_key(self, key: RsaPrivateKey, wrapped: bytes) -> bytes:
        """Decrypt a wrapped data key."""

    def seal(self, data_key: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Authenticated symmetric encryption (nonce || ct || tag)."""

    def open_sealed(self, data_key: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        """Verify and decrypt the output of :meth:`seal`."""

    def seal_gcm(self, data_key: bytes, plaintext: bytes,
                 aad: bytes = b"") -> bytes:
        """AES-GCM sealing (96-bit IV || ciphertext || 16-byte tag)."""

    def open_gcm(self, data_key: bytes, sealed: bytes,
                 aad: bytes = b"") -> bytes:
        """Verify and decrypt the output of :meth:`seal_gcm`."""


class PureBackend:
    """Backend built entirely on :mod:`repro.crypto.pure`.

    Parameters
    ----------
    seed:
        When given, all randomness (key generation, nonces, padding) is
        drawn from a deterministic HMAC-DRBG — reproducible test runs.
    """

    name = "pure"

    def __init__(self, seed: bytes | None = None) -> None:
        self._rng = HmacDrbg(seed) if seed is not None else None

    def _random_source(self) -> HmacDrbg | None:
        return self._rng

    def digest(self, data: bytes) -> bytes:
        return sha256(data)

    def random(self, nbytes: int) -> bytes:
        if self._rng is not None:
            return self._rng.generate(nbytes)
        return secrets.token_bytes(nbytes)

    def generate_keypair(self, bits: int = 2048) -> RsaPrivateKey:
        return generate_keypair(bits, self._rng)

    def sign(self, key: RsaPrivateKey, message: bytes) -> bytes:
        return key.sign(message)

    def verify(self, key: RsaPublicKey, message: bytes, signature: bytes) -> None:
        key.verify(message, signature)

    def sign_pss(self, key: RsaPrivateKey, message: bytes) -> bytes:
        return key.sign_pss(message, self._rng)

    def verify_pss(self, key: RsaPublicKey, message: bytes,
                   signature: bytes) -> None:
        key.verify_pss(message, signature)

    def verify_batch(self, jobs: list[VerifyJob],
                     workers: int | None = None) -> list[Exception | None]:
        # Pure-Python modular exponentiation holds the GIL, so threads
        # cannot help; the batch degrades to an in-order loop with the
        # same per-job outcome contract.
        return sequential_verify_batch(self, jobs)

    def wrap_key(self, key: RsaPublicKey, data_key: bytes) -> bytes:
        return key.encrypt(data_key, self._rng)

    def unwrap_key(self, key: RsaPrivateKey, wrapped: bytes) -> bytes:
        return key.decrypt(wrapped)

    def seal(self, data_key: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        return seal(data_key, plaintext, aad, self._rng)

    def open_sealed(self, data_key: bytes, sealed: bytes, aad: bytes = b"") -> bytes:
        return open_sealed(data_key, sealed, aad)

    def seal_gcm(self, data_key: bytes, plaintext: bytes,
                 aad: bytes = b"") -> bytes:
        from .pure.gcm import gcm_encrypt

        iv = self.random(12)
        ciphertext, tag = gcm_encrypt(data_key, iv, plaintext, aad)
        return iv + ciphertext + tag

    def open_gcm(self, data_key: bytes, sealed: bytes,
                 aad: bytes = b"") -> bytes:
        from ..errors import DecryptionError
        from .pure.gcm import gcm_decrypt

        if len(sealed) < 28:
            raise DecryptionError("GCM blob too short")
        return gcm_decrypt(data_key, sealed[:12], sealed[12:-16],
                           sealed[-16:], aad)


def _verify_one(backend: CryptoBackend, job: VerifyJob) -> Exception | None:
    public_key, message, signature, algorithm = job
    try:
        if algorithm == "pss":
            backend.verify_pss(public_key, message, signature)
        elif algorithm == "pkcs1v15":
            backend.verify(public_key, message, signature)
        else:
            raise ValueError(f"unknown batch algorithm {algorithm!r}")
    except Exception as exc:
        return exc
    return None


def sequential_verify_batch(backend: CryptoBackend,
                            jobs: list[VerifyJob]) -> list[Exception | None]:
    """Reference batch implementation: in-order, one check per job."""
    return [_verify_one(backend, job) for job in jobs]


def dispatch_verify_batch(backend: CryptoBackend,
                          jobs: list[VerifyJob],
                          workers: int | None = None,
                          ) -> list[Exception | None]:
    """Run *jobs* through the backend's batch verifier.

    Falls back to the sequential reference loop for backends that
    predate :meth:`CryptoBackend.verify_batch` (third-party test
    doubles), so callers can batch unconditionally.
    """
    if not jobs:
        return []
    method = getattr(backend, "verify_batch", None)
    if method is None:
        return sequential_verify_batch(backend, jobs)
    return method(jobs, workers=workers)


_default: CryptoBackend | None = None


def default_backend() -> CryptoBackend:
    """Return the process-wide default backend.

    Prefers the fast (``cryptography``-based) backend when the wheel is
    importable, falling back to the pure backend otherwise.
    """
    global _default
    if _default is None:
        try:
            from .fast import FastBackend

            _default = FastBackend()
        except ImportError:  # pragma: no cover - environment dependent
            _default = PureBackend()
    return _default


def set_default_backend(backend: CryptoBackend | None) -> None:
    """Override (or with ``None``, reset) the process-wide default backend."""
    global _default
    _default = backend
