"""Minimal public-key infrastructure for cross-enterprise trust.

The paper assumes every workflow participant owns a key pair whose
public half the other parties can authenticate.  We make that trust
root explicit: a :class:`CertificateAuthority` (one per enterprise, or a
shared one) issues :class:`Certificate` objects binding an identity to a
public key, and a :class:`KeyDirectory` resolves identities to verified
public keys during document verification.

Certificates are deliberately simple (no X.509 encoding) but carry the
semantically important fields: subject, public key, issuer, serial,
validity window, and the CA signature over a canonical byte encoding.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..errors import CertificateError
from .backend import CryptoBackend, default_backend
from .keys import KeyPair, public_key_from_dict, public_key_to_dict
from .pure.rsa import RsaPublicKey

__all__ = ["Certificate", "CertificateAuthority", "KeyDirectory"]


@dataclass(frozen=True)
class Certificate:
    """An identity certificate: ``subject``'s key vouched for by ``issuer``."""

    subject: str
    public_key: RsaPublicKey
    issuer: str
    serial: int
    not_before: float
    not_after: float
    signature: bytes

    def tbs_bytes(self) -> bytes:
        """The canonical to-be-signed encoding of the certificate body."""
        body = {
            "subject": self.subject,
            "public_key": public_key_to_dict(self.public_key),
            "issuer": self.issuer,
            "serial": self.serial,
            "not_before": self.not_before,
            "not_after": self.not_after,
        }
        return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()

    def to_dict(self) -> dict[str, object]:
        """JSON-safe serialization."""
        return {
            "subject": self.subject,
            "public_key": public_key_to_dict(self.public_key),
            "issuer": self.issuer,
            "serial": self.serial,
            "not_before": self.not_before,
            "not_after": self.not_after,
            "signature": self.signature.hex(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Certificate":
        """Deserialize the output of :meth:`to_dict`."""
        return cls(
            subject=str(data["subject"]),
            public_key=public_key_from_dict(data["public_key"]),  # type: ignore[arg-type]
            issuer=str(data["issuer"]),
            serial=int(data["serial"]),  # type: ignore[arg-type]
            not_before=float(data["not_before"]),  # type: ignore[arg-type]
            not_after=float(data["not_after"]),  # type: ignore[arg-type]
            signature=bytes.fromhex(str(data["signature"])),
        )


class CertificateAuthority:
    """Issues and verifies identity certificates.

    Parameters
    ----------
    name:
        The issuer string embedded in every certificate.
    keypair:
        CA signing key; generated when omitted.
    """

    def __init__(self, name: str, keypair: KeyPair | None = None,
                 backend: CryptoBackend | None = None,
                 public_key: RsaPublicKey | None = None) -> None:
        self.name = name
        self.backend = backend or default_backend()
        if public_key is not None:
            # Verification-only anchor: can check certificates but
            # never issue them (the auditor's view of a foreign CA).
            if keypair is not None:
                raise CertificateError(
                    "pass either a keypair or a public key, not both"
                )
            self.keypair = None
            self._public_key = public_key
        else:
            self.keypair = keypair or KeyPair.generate(
                name, backend=self.backend
            )
            self._public_key = self.keypair.public_key
        self._next_serial = 1
        self._revoked: set[int] = set()

    @property
    def public_key(self) -> RsaPublicKey:
        """The CA verification key (the trust anchor)."""
        return self._public_key

    @property
    def verification_only(self) -> bool:
        """True when this anchor holds no signing key."""
        return self.keypair is None

    def issue(self, subject: str, public_key: RsaPublicKey,
              not_before: float = 0.0,
              not_after: float = float("inf")) -> Certificate:
        """Issue a certificate binding *subject* to *public_key*."""
        if self.keypair is None:
            raise CertificateError(
                f"CA {self.name!r} is a verification-only anchor and "
                f"cannot issue certificates"
            )
        serial = self._next_serial
        self._next_serial += 1
        unsigned = Certificate(
            subject=subject,
            public_key=public_key,
            issuer=self.name,
            serial=serial,
            not_before=not_before,
            not_after=not_after,
            signature=b"",
        )
        signature = self.backend.sign(self.keypair.private_key,
                                      unsigned.tbs_bytes())
        return Certificate(
            subject=subject,
            public_key=public_key,
            issuer=self.name,
            serial=serial,
            not_before=not_before,
            not_after=not_after,
            signature=signature,
        )

    def revoke(self, serial: int) -> None:
        """Add *serial* to the revocation list."""
        self._revoked.add(serial)

    def is_revoked(self, serial: int) -> bool:
        """Check the revocation list."""
        return serial in self._revoked

    def verify(self, cert: Certificate, at_time: float | None = None) -> None:
        """Verify *cert* against this CA; raise ``CertificateError`` if bad."""
        if cert.issuer != self.name:
            raise CertificateError(
                f"certificate issued by {cert.issuer!r}, not {self.name!r}"
            )
        if cert.serial in self._revoked:
            raise CertificateError(f"certificate serial {cert.serial} revoked")
        if at_time is not None and not (
            cert.not_before <= at_time <= cert.not_after
        ):
            raise CertificateError("certificate outside validity window")
        try:
            self.backend.verify(self.public_key, cert.tbs_bytes(),
                                cert.signature)
        except Exception as exc:
            raise CertificateError(f"CA signature invalid: {exc}") from exc


class KeyDirectory:
    """Resolves participant identities to CA-verified public keys.

    The directory trusts one or more CAs; a certificate from any trusted
    CA makes its subject resolvable.  This models the cross-enterprise
    setting where each company runs its own CA but all CAs are mutually
    recognised for a given workflow.
    """

    def __init__(self, authorities: list[CertificateAuthority] | None = None) -> None:
        self._authorities: dict[str, CertificateAuthority] = {
            ca.name: ca for ca in (authorities or [])
        }
        self._certs: dict[str, Certificate] = {}

    def trust(self, ca: CertificateAuthority) -> None:
        """Add *ca* to the trusted issuer set."""
        self._authorities[ca.name] = ca

    def register(self, cert: Certificate) -> None:
        """Verify and store *cert*; later lookups return its key."""
        ca = self._authorities.get(cert.issuer)
        if ca is None:
            raise CertificateError(f"untrusted issuer {cert.issuer!r}")
        ca.verify(cert)
        self._certs[cert.subject] = cert

    def enroll(self, keypair: KeyPair, ca_name: str) -> Certificate:
        """Issue (via the named CA) and register a cert for *keypair*."""
        ca = self._authorities.get(ca_name)
        if ca is None:
            raise CertificateError(f"unknown CA {ca_name!r}")
        cert = ca.issue(keypair.identity, keypair.public_key)
        self.register(cert)
        return cert

    def public_key_of(self, identity: str) -> RsaPublicKey:
        """Return the verified public key of *identity*."""
        cert = self._certs.get(identity)
        if cert is None:
            raise CertificateError(f"no certificate for identity {identity!r}")
        ca = self._authorities[cert.issuer]
        if ca.is_revoked(cert.serial):
            raise CertificateError(
                f"certificate for {identity!r} has been revoked"
            )
        return cert.public_key

    def certificate_of(self, identity: str) -> Certificate:
        """Return the stored certificate of *identity*."""
        cert = self._certs.get(identity)
        if cert is None:
            raise CertificateError(f"no certificate for identity {identity!r}")
        return cert

    def identities(self) -> list[str]:
        """All registered identities, sorted."""
        return sorted(self._certs)

    def certificates(self) -> list[Certificate]:
        """All registered certificates (sorted by subject)."""
        return [self._certs[subject] for subject in sorted(self._certs)]

    def authorities(self) -> list[CertificateAuthority]:
        """All trusted CAs (sorted by name)."""
        return [self._authorities[name] for name in
                sorted(self._authorities)]

    def to_public_dict(self) -> dict[str, object]:
        """Verification-only trust snapshot: CA public keys + certs.

        The same shape ``World.to_public_dict`` produces — everything a
        third party (or an archival bundle) needs to verify signatures,
        and never any private key.
        """
        return {
            "authorities": [
                {"name": ca.name,
                 "public_key": public_key_to_dict(ca.public_key)}
                for ca in self.authorities()
            ],
            "certificates": [
                cert.to_dict() for cert in self.certificates()
            ],
        }

    def __contains__(self, identity: str) -> bool:
        return identity in self._certs
