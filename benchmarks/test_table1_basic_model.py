"""Table 1 — basic operational model on the Fig. 9A workflow.

Regenerates the paper's Table 1: for each of the ten activity
executions (two passes of A, B1, B2, C, D around the loop),

* #signatures verified on receipt,
* #CERs in the produced document,
* α — time to decrypt cipher data and verify signatures,
* β — time to encrypt the result and embed signatures,
* Σ — size of the produced DRA4WfMS document.

Shape assertions encode what the paper's prose claims about this table;
absolute times differ from the 2012 testbed.
"""

from __future__ import annotations

from conftest import emit_table, run_fig9a

#: Paper Table 1 ground truth: (#signatures, #CERs, bytes) per step.
PAPER_TABLE1 = [
    ("X''_A^0", 1, 1, 8_667),
    ("X''_B1^0", 2, 2, 10_184),
    ("X''_B2^0", 2, 2, 10_184),
    ("X''_C^0", 4, 4, 13_503),
    ("X''_D^0", 5, 5, 15_015),
    ("X''_A^1", 6, 6, 16_562),
    ("X''_B1^1", 7, 7, 18_079),
    ("X''_B2^1", 7, 7, 18_079),
    ("X''_C^1", 9, 9, 21_398),
    ("X''_D^1", 10, 10, 22_910),
]
PAPER_INITIAL_SIZE = 7_119


def test_table1(benchmark, world, fig9a, backend):
    initial, trace = benchmark.pedantic(
        lambda: run_fig9a(world, fig9a, backend),
        rounds=3, warmup_rounds=1,
    )

    rows = [["Initial", "-", 0, 0, "-", "-", initial.size_bytes]]
    for step in trace.steps:
        rows.append([
            step.label, step.participant.split("@")[0],
            step.signatures_verified, step.num_cers,
            f"{step.alpha:.4f}", f"{step.beta:.4f}", step.size_bytes,
        ])
    emit_table(
        "table1", "Table 1: basic model, Fig. 9A (times in seconds)",
        ["Document", "Participant", "#sigs", "#CERs", "alpha", "beta",
         "Sigma(B)"],
        rows,
    )

    # --- exact structural agreement with the paper -----------------------
    assert [s.signatures_verified for s in trace.steps] == \
        [row[1] for row in PAPER_TABLE1]
    assert [s.num_cers for s in trace.steps] == \
        [row[2] for row in PAPER_TABLE1]

    # --- size shape: linear in #CERs, within 2x of the paper's bytes -----
    for step, paper_row in zip(trace.steps, PAPER_TABLE1):
        paper_bytes = paper_row[3]
        assert 0.5 < step.size_bytes / paper_bytes < 2.0, (
            f"{step.label}: {step.size_bytes} B vs paper {paper_bytes} B"
        )
    assert 0.3 < initial.size_bytes / PAPER_INITIAL_SIZE < 2.0

    # --- "β requires only a constant time" -------------------------------
    betas = sorted(s.beta for s in trace.steps)
    # Discard the single largest (JIT/cache warts) and demand the rest
    # stay within a small band.
    assert betas[-2] / betas[0] < 6.0

    # --- "α proportional to the number of signatures" --------------------
    first_alpha = trace.steps[0].alpha
    last_alpha = trace.steps[-1].alpha
    assert last_alpha > first_alpha  # 10 signatures vs 1

    # --- "verify costs more than sign" once history accumulates ----------
    tail = trace.steps[-4:]
    assert all(s.alpha > s.beta for s in tail)
