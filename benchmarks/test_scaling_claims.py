"""Claims C1/C2 — the scaling behaviour the paper's §4.1 prose asserts.

"The size of the DRA4WfMS and the time for decrypting and verifying
signatures were proportional to the numbers of CERs and signatures in
the documents.  However, only a constant time was needed to encrypt and
embed signatures."

The paper shows this on one 10-step trace; here we sweep chain
workflows of 2–32 activities and fit the trends, plus the Table-1 vs
Table-2 size ratio (advanced ≈ 2× basic, paper: 47,406 / 22,910 ≈ 2.07).
"""

from __future__ import annotations

import numpy as np

from conftest import GENERIC_DESIGNER, emit_table, run_fig9a, run_fig9b
from repro.core import InMemoryRuntime
from repro.document import build_initial_document
from repro.workloads.generator import auto_responders, chain_definition, participant_pool

CHAIN_LENGTHS = [2, 4, 8, 16, 32]


def run_chain(world, backend, length):
    definition = chain_definition(length, participant_pool(6),
                                  designer=GENERIC_DESIGNER)
    initial = build_initial_document(
        definition, world.keypair(GENERIC_DESIGNER), backend=backend
    )
    runtime = InMemoryRuntime(world.directory, world.keypairs,
                              backend=backend)
    return runtime.run(initial, definition, auto_responders(definition),
                       mode="basic")


def test_alpha_and_size_linear_beta_constant(benchmark, world, backend):
    traces = {}

    def sweep():
        # Three runs per length; keep the per-length *minimum* of the
        # last step's α/β — minima are robust to scheduler noise.
        for length in CHAIN_LENGTHS:
            runs = [run_chain(world, backend, length) for _ in range(3)]
            best = min(runs, key=lambda t: t.steps[-1].alpha)
            best_beta = min(t.steps[-1].beta for t in runs)
            traces[length] = (best, best_beta)
        return traces

    benchmark.pedantic(sweep, rounds=1, warmup_rounds=1)

    rows = []
    last_alphas, last_betas, final_sizes = [], [], []
    for length in CHAIN_LENGTHS:
        trace, best_beta = traces[length]
        last = trace.steps[-1]
        last_alphas.append(last.alpha)
        last_betas.append(best_beta)
        final_sizes.append(trace.final_size)
        rows.append([
            length, last.signatures_verified,
            f"{last.alpha:.4f}", f"{best_beta:.4f}", trace.final_size,
        ])
    emit_table(
        "scaling_chains",
        "Claim C1/C2: last-step cost vs chain length (basic model)",
        ["n activities", "#sigs verified", "alpha(s)", "beta(s)",
         "final Sigma(B)"],
        rows,
    )

    ns = np.array(CHAIN_LENGTHS, dtype=float)

    # Σ linear in n: a straight-line fit explains almost all variance.
    sizes = np.array(final_sizes, dtype=float)
    coefficients = np.polyfit(ns, sizes, 1)
    predicted = np.polyval(coefficients, ns)
    residual = np.linalg.norm(sizes - predicted) / np.linalg.norm(sizes)
    assert residual < 0.05
    assert coefficients[0] > 0

    # α grows with n (proportional to #signatures): the 32-chain's last
    # verification costs several times the 2-chain's.
    assert last_alphas[-1] > 3.0 * last_alphas[0]

    # β constant: the 32-chain's last signing is within a small factor
    # of the 2-chain's despite 16× more history.
    assert last_betas[-1] < 8.0 * last_betas[0]

    # And β does NOT scale with n the way α does.
    alpha_growth = last_alphas[-1] / last_alphas[0]
    beta_growth = last_betas[-1] / last_betas[0]
    assert alpha_growth > 1.5 * beta_growth


def test_advanced_to_basic_size_ratio(benchmark, world, backend):
    """Paper: Table 2 final (47,406 B) ≈ 2.07× Table 1 final (22,910 B)."""
    from repro.workloads.figure9 import (
        figure_9a_definition,
        figure_9b_definition,
    )

    def measure():
        _, basic = run_fig9a(world, figure_9a_definition(), backend)
        _, advanced, _ = run_fig9b(world, figure_9b_definition(), backend)
        return basic, advanced

    basic, advanced = benchmark.pedantic(measure, rounds=1,
                                         warmup_rounds=0)
    ratio = advanced.final_size / basic.final_size
    emit_table(
        "size_ratio",
        "Advanced vs basic model final document size",
        ["model", "final Sigma(B)"],
        [["basic (Table 1)", basic.final_size],
         ["advanced (Table 2)", advanced.final_size],
         ["ratio", f"{ratio:.2f} (paper: 2.07)"]],
    )
    assert 1.5 < ratio < 3.0
