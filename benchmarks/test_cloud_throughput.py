"""Cloud-system throughput — many instances through the Fig. 7 stack.

§3's scalability argument: because security lives in the documents,
"different enterprises or organizations can simultaneously use a single
DRA4WfMS cloud system".  This bench pushes a batch of independent
Fig. 9B instances through the full simulated cloud (portals → TFC →
pool → notifications) and reports instances/s, portal load spread, and
the MapReduce statistics job across the resulting pool.
"""

from __future__ import annotations

import time

from conftest import TFC_IDENTITY, emit_table
from repro.cloud import CloudSystem, run_process_in_cloud
from repro.document import build_initial_document
from repro.workloads.figure9 import DESIGNER, figure9_responders

INSTANCES = 6


def test_multi_instance_throughput(benchmark, world, fig9b, backend):
    state = {}

    def run_batch():
        system = CloudSystem(world.directory,
                             world.keypair(TFC_IDENTITY),
                             portals=3, region_servers=2, datanodes=3,
                             backend=backend)
        start = time.perf_counter()
        for _ in range(INSTANCES):
            initial = build_initial_document(
                fig9b, world.keypair(DESIGNER), backend=backend
            )
            run_process_in_cloud(system, fig9b, initial,
                                 world.keypair(DESIGNER),
                                 world.keypairs, figure9_responders(0))
        state["wall"] = time.perf_counter() - start
        state["system"] = system
        return system

    benchmark.pedantic(run_batch, rounds=1, warmup_rounds=1)
    system = state["system"]
    wall = state["wall"]

    submissions = {p.portal_id: p.stats["submissions"]
                   for p in system.portals}
    progress, job = system.instance_progress()

    emit_table(
        "cloud_throughput",
        f"Cloud system: {INSTANCES} Fig. 9B instances end to end",
        ["metric", "value"],
        [["instances per second", f"{INSTANCES / wall:.2f}"],
         ["activity executions per second",
          f"{INSTANCES * 5 / wall:.1f}"],
         ["simulated cloud time (s)", f"{system.clock.now():.3f}"],
         ["portal submissions", str(submissions)],
         ["TFC records", len(system.tfc.records)],
         ["pool MapReduce rows", job.input_rows]],
    )

    # Every instance completed all five executions.
    assert len(progress) == INSTANCES
    assert all(count == 5 for count in progress.values())
    # All three portals carried traffic.
    assert sum(1 for count in submissions.values() if count > 0) == 3
    # The TFC recorded every finalisation across all tenants.
    assert len(system.tfc.records) == INSTANCES * 5
