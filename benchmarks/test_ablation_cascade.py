"""Ablation — why the cascade signs *signatures*, not the whole document.

DESIGN.md calls out the cascade construction as the key design choice:
each new signature references the predecessors' **SignatureValue
elements** instead of digesting the entire accumulated document.  The
alternative ("naive": every participant signs the whole document so
far) gives the same nonrepudiation scope but makes the signing cost β
grow linearly with history — destroying the paper's "only a constant
time was needed to encrypt and embed signatures" property.

This bench implements the naive variant and measures both against
growing chains.
"""

from __future__ import annotations

import time

from conftest import GENERIC_DESIGNER, emit_table
from repro.core import InMemoryRuntime
from repro.document import build_initial_document
from repro.workloads.generator import (
    auto_responders,
    chain_definition,
    participant_pool,
)
from repro.xmlsec.canonical import canonicalize

CHAIN_LENGTHS = [4, 8, 16, 32]


def measure_cascade(world, backend, length):
    """β of the last step under the real (cascade) construction."""
    definition = chain_definition(length, participant_pool(6),
                                  designer=GENERIC_DESIGNER)
    initial = build_initial_document(
        definition, world.keypair(GENERIC_DESIGNER), backend=backend
    )
    runtime = InMemoryRuntime(world.directory, world.keypairs,
                              backend=backend)
    trace = runtime.run(initial, definition, auto_responders(definition),
                        mode="basic")
    return trace.steps[-1].beta, trace.final_document


def measure_naive(world, backend, document):
    """Signing cost if the participant had to sign the whole document.

    Simulates the alternative: canonicalize the entire accumulated
    document and RSA-sign those bytes (same RSA key size, same backend).
    """
    key = world.keypair(GENERIC_DESIGNER).private_key
    payload = canonicalize(document.root)
    start = time.perf_counter()
    backend.sign(key, payload)
    return time.perf_counter() - start, len(payload)


def test_cascade_vs_whole_document_signing(benchmark, world, backend):
    results = {}

    def sweep():
        for length in CHAIN_LENGTHS:
            cascade_beta, final = measure_cascade(world, backend, length)
            # Median of repeated naive signings for a stable figure.
            samples = sorted(
                measure_naive(world, backend, final)[0] for _ in range(5)
            )
            naive_beta = samples[len(samples) // 2]
            results[length] = (cascade_beta, naive_beta,
                               final.size_bytes)
        return results

    benchmark.pedantic(sweep, rounds=1, warmup_rounds=1)

    rows = [
        [length, f"{cascade * 1000:.3f}", f"{naive * 1000:.3f}", size]
        for length, (cascade, naive, size) in results.items()
    ]
    emit_table(
        "ablation_cascade",
        "Ablation: cascade signing vs whole-document signing "
        "(last-step β, ms)",
        ["chain length", "cascade (ms)", "whole-doc (ms)", "doc bytes"],
        rows,
    )

    # The naive variant's cost grows with the document; the cascade's β
    # stays flat.  Compare growth factors between the smallest and
    # largest chains.
    cascade_growth = results[CHAIN_LENGTHS[-1]][0] / results[CHAIN_LENGTHS[0]][0]
    naive_growth = results[CHAIN_LENGTHS[-1]][1] / results[CHAIN_LENGTHS[0]][1]
    # Whole-document signing must hash 8× more bytes; the cascade only
    # re-digests its constant-size targets.
    assert results[CHAIN_LENGTHS[-1]][2] > \
        6 * results[CHAIN_LENGTHS[0]][2]
    assert cascade_growth < 6.0
    # RSA dominates hashing at these sizes, so the naive growth factor
    # is modest in absolute terms — but the *bytes hashed* grow
    # linearly, which is the asymptotic argument; assert the cascade
    # never becomes slower than naive.
    assert results[CHAIN_LENGTHS[-1]][0] < \
        5 * (results[CHAIN_LENGTHS[-1]][1] + 1e-4)
