"""Shared fixtures and table reporting for the benchmark harness.

Each benchmark regenerates one table/figure/claim from the paper's
evaluation (§4).  Reproduced tables are printed to stdout *and* written
to ``benchmarks/results/*.txt`` so EXPERIMENTS.md can quote them.

Key size note: the paper's 2012 testbed (JDK 6) used RSA-1024 XML
signatures by default, and our document sizes match the paper's closely
at 1024 bits (final Fig. 9A document ≈ 21 kB vs the paper's 22.9 kB).
Table benches therefore use RSA-1024; the crypto microbenches sweep
1024/2048.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess

import pytest

from repro.core import InMemoryRuntime, TfcServer
from repro.crypto.fast import FastBackend
from repro.document import build_initial_document
from repro.workloads import build_world, figure9_responders
from repro.workloads.figure9 import (
    DESIGNER,
    PARTICIPANTS,
    figure_9a_definition,
    figure_9b_definition,
)
from repro.workloads.generator import participant_pool

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
TFC_IDENTITY = "tfc@cloud.example"
GENERIC_DESIGNER = "designer@enterprise.example"


@pytest.fixture(scope="session")
def backend():
    return FastBackend()


@pytest.fixture(scope="session")
def world(backend):
    """PKI world: Fig. 9 participants + TFC + a generic pool of six."""
    identities = [
        DESIGNER, *PARTICIPANTS.values(), TFC_IDENTITY,
        GENERIC_DESIGNER, *participant_pool(6),
    ]
    return build_world(identities, bits=1024, backend=backend)


@pytest.fixture(scope="session")
def fig9a():
    return figure_9a_definition()


@pytest.fixture(scope="session")
def fig9b():
    return figure_9b_definition()


def run_fig9a(world, fig9a, backend):
    """One measured basic-model execution (10 steps)."""
    initial = build_initial_document(fig9a, world.keypair(DESIGNER),
                                     backend=backend)
    runtime = InMemoryRuntime(world.directory, world.keypairs,
                              backend=backend)
    return initial, runtime.run(initial, fig9a, figure9_responders(1),
                                mode="basic")


def run_fig9b(world, fig9b, backend):
    """One measured advanced-model execution; returns (initial, trace, tfc)."""
    initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                     backend=backend)
    tfc = TfcServer(world.keypair(TFC_IDENTITY), world.directory,
                    backend=backend)
    runtime = InMemoryRuntime(world.directory, world.keypairs, tfc=tfc,
                              backend=backend)
    return initial, runtime.run(initial, fig9b, figure9_responders(1),
                                mode="advanced"), tfc


def emit_table(name: str, title: str, header: list[str],
               rows: list[list[object]]) -> str:
    """Format, print, and persist one reproduced table."""
    widths = [
        max(len(str(header[i])), *(len(str(r[i])) for r in rows))
        for i in range(len(header))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    return text


#: Version of the ``bench_meta`` stamp carried by every BENCH file.
BENCH_SCHEMA = 1


def _git_sha() -> str:
    """Short commit id of the tree the bench ran on; never raises."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            cwd=pathlib.Path(__file__).parent, capture_output=True,
            text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def bench_meta(name: str) -> dict:
    """The provenance stamp merged into every emitted BENCH payload."""
    return {
        "name": name,
        "schema_version": BENCH_SCHEMA,
        "git_sha": _git_sha(),
        "cpu_count": os.cpu_count() or 1,
    }


def emit_bench(name: str, payload: dict) -> str:
    """Persist a machine-readable benchmark result — the ONE emitter.

    Written twice: ``BENCH_<name>.json`` at the repo root (what CI
    uploads as an artifact and diff-checks across runs) and a copy under
    ``benchmarks/results/`` next to the human-readable tables.  Every
    bench and sweep script goes through here so the naming scheme,
    serialisation (sorted keys, trailing newline) and destinations can
    never drift apart.

    A ``bench_meta`` provenance key (name, stamp schema version, git
    SHA, cpu count) is merged into every payload so
    ``scripts/bench_trajectory.py`` can build a cross-run trajectory
    table.  It is one *added* key — existing top-level result keys are
    untouched, so consumers pinned to them keep working.
    """
    stamped = dict(payload)
    stamped["bench_meta"] = bench_meta(name)
    text = json.dumps(stamped, indent=2, sort_keys=True) + "\n"
    root = pathlib.Path(__file__).parent.parent
    (root / f"BENCH_{name}.json").write_text(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(text)
    return text


# Back-compat alias for external scripts pinned to the old name.
emit_bench_json = emit_bench
