"""True-parallel fleet throughput: worker-pool scaling, measured honestly.

Runs the same instance population through ``run_real_fleet`` at 1, 2
and 4 worker processes and records wall-clock throughput per worker
count in ``BENCH_fleet_real.json``.  Two things keep the numbers
honest:

* ``cpu_count`` is recorded next to every figure.  Process-pool
  speedup is bounded by physical cores: on a single-core container
  (CI, this development box) 4 workers *cannot* beat 1 — the numbers
  are still emitted, but the ≥2× speedup expectation is only asserted
  when the host actually has ≥4 CPUs (and can be forced off with the
  correctness-only env knob below).
* the deterministic aggregates of every worker count are asserted
  identical before any timing is trusted — a pool that changed results
  would make its throughput meaningless.

Scale knobs (env): ``FLEET_REAL_SPEC`` (default ``chain:10:3``),
``FLEET_REAL_INSTANCES`` (default 12).  The paper-scale configuration
is ``FLEET_REAL_SPEC=chain:50:5 FLEET_REAL_INSTANCES=1000`` on a
multi-core host; the default is sized to finish in seconds anywhere.
"""

from __future__ import annotations

import os

from conftest import emit_bench, emit_table
from repro.fleet import RealFleetConfig, run_real_fleet, workload_from_spec
from repro.fleet.fleet import TFC_IDENTITY
from repro.workloads.participants import build_world

SPEC = os.environ.get("FLEET_REAL_SPEC", "chain:10:3")
INSTANCES = int(os.environ.get("FLEET_REAL_INSTANCES", "12"))
SEED = 7
WORKER_COUNTS = (1, 2, 4)
#: Expected speedup of 4 workers over 1 — only asserted on hosts with
#: at least 4 CPUs (pool scaling cannot exceed physical parallelism).
EXPECTED_SPEEDUP_AT_4 = 2.0


def test_worker_pool_scaling():
    workload = workload_from_spec(SPEC)
    world = build_world([*workload.identities, TFC_IDENTITY], bits=1024)

    reports = {}
    for workers in WORKER_COUNTS:
        reports[workers] = run_real_fleet(
            RealFleetConfig(spec=SPEC, instances=INSTANCES, seed=SEED,
                            workers=workers, audit_every=4),
            world=world,
        )

    # Correctness before timing: every worker count must agree on all
    # deterministic aggregates, or the throughput numbers mean nothing.
    baseline = reports[1]
    for workers, report in reports.items():
        assert report.deterministic_dict() == baseline.deterministic_dict()
        assert report.audit_failures == 0
        assert report.instances == INSTANCES

    cpu_count = baseline.cpu_count
    base_throughput = baseline.throughput_per_wall_second
    rows = []
    results = {}
    for workers, report in sorted(reports.items()):
        speedup = (report.throughput_per_wall_second / base_throughput
                   if base_throughput else 0.0)
        rows.append([
            workers, f"{report.wall_seconds:.3f}",
            f"{report.throughput_per_wall_second:.3f}",
            f"{speedup:.2f}x", report.hops_executed,
        ])
        results[str(workers)] = {
            "wall_seconds": round(report.wall_seconds, 6),
            "throughput_per_wall_second": round(
                report.throughput_per_wall_second, 6),
            "speedup_vs_1_worker": round(speedup, 4),
            "host_seconds_total": round(report.host_seconds_total, 6),
        }
    emit_table(
        "fleet_real",
        f"True-parallel fleet — {SPEC}, {INSTANCES} instances, "
        f"{cpu_count} host CPUs",
        ["workers", "wall s", "inst/s", "speedup", "hops"],
        rows,
    )
    emit_bench("fleet_real", {
        "workload": SPEC,
        "instances": INSTANCES,
        "seed": SEED,
        "cpu_count": cpu_count,
        "deterministic": baseline.deterministic_dict(),
        "by_workers": results,
        "expected_speedup_at_4_workers": EXPECTED_SPEEDUP_AT_4,
        "speedup_asserted": cpu_count >= 4,
    })

    if cpu_count >= 4:
        speedup_at_4 = results["4"]["speedup_vs_1_worker"]
        assert speedup_at_4 >= EXPECTED_SPEEDUP_AT_4, (
            f"4 workers on {cpu_count} CPUs reached only "
            f"{speedup_at_4:.2f}x over 1 worker "
            f"(expected ≥{EXPECTED_SPEEDUP_AT_4}x)"
        )
