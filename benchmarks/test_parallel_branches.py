"""Parallel branch execution — the architecture's inherent concurrency.

§1 motivates distribution with load balancing and locality; the
engine-less design goes further: AND-split branches are *data-
independent* (each routes its own document copy), so they parallelise
without any coherence protocol — the bottleneck the paper attributes to
engine-based systems ("the accesses and coherence of shared workflow
process instances are a bottleneck").

This bench runs wide AND-split diamonds on the sequential and the
threaded runtime and reports the speedup.  The parallel section is the
branch AEAs' RSA work (which releases the GIL under OpenSSL).
"""

from __future__ import annotations

import time

from conftest import GENERIC_DESIGNER, emit_table
from repro.core import InMemoryRuntime
from repro.core.parallel import ThreadedRuntime
from repro.document import build_initial_document
from repro.workloads.generator import (
    auto_responders,
    diamond_definition,
    participant_pool,
)

WIDTHS = [2, 4, 8]


def run_once(world, backend, runtime_cls, definition, responders,
             **kwargs):
    initial = build_initial_document(
        definition, world.keypair(GENERIC_DESIGNER), backend=backend
    )
    runtime = runtime_cls(world.directory, world.keypairs,
                          backend=backend, **kwargs)
    start = time.perf_counter()
    trace = runtime.run(initial, definition, responders, mode="basic")
    return time.perf_counter() - start, trace


def test_threaded_vs_sequential(benchmark, world, backend):
    results = {}

    def sweep():
        for width in WIDTHS:
            definition = diamond_definition(width, participant_pool(6),
                                            designer=GENERIC_DESIGNER)
            responders = auto_responders(definition)
            seq = min(run_once(world, backend, InMemoryRuntime,
                               definition, responders)[0]
                      for _ in range(3))
            par = min(run_once(world, backend, ThreadedRuntime,
                               definition, responders,
                               max_workers=width)[0]
                      for _ in range(3))
            results[width] = (seq, par)
        return results

    benchmark.pedantic(sweep, rounds=1, warmup_rounds=1)

    rows = [
        [width, f"{seq * 1000:.1f}", f"{par * 1000:.1f}",
         f"{seq / par:.2f}x"]
        for width, (seq, par) in results.items()
    ]
    emit_table(
        "parallel_branches",
        "AND-split branch execution: sequential vs threaded runtime",
        ["branch width", "sequential (ms)", "threaded (ms)", "speedup"],
        rows,
    )

    # Correctness is covered by tests; here we only demand the threaded
    # runtime never *loses* badly (thread overhead bounded)...
    for width, (seq, par) in results.items():
        assert par < 2.0 * seq
    # ...and that at width 8 it is at least not slower (the usual
    # observed speedup is 1.3–2.5× depending on core count).
    seq8, par8 = results[8]
    assert par8 <= 1.2 * seq8
