"""Ablation — element-wise encryption vs whole-result encryption.

§2 justifies element-wise encryption: "different portions in the
workflow process instance may need to be encrypted using different keys
since each activity may be executed by different participants."  The
alternative — sealing the whole execution result under one key set —
cannot express per-field reader sets at all (functional gap), and its
apparent size saving is small because the per-recipient RSA-wrapped
keys dominate.

This bench quantifies both points on results with growing field counts
and reader fan-out.
"""

from __future__ import annotations

from conftest import emit_table
from repro.crypto import KeyPair
from repro.xmlsec.canonical import canonicalize
from repro.xmlsec.xmlenc import decrypt_value, encrypt_value
from repro.errors import XmlEncryptionError

FIELDS = 6


def test_elementwise_grants_differ_per_field(benchmark, world, backend):
    readers = {
        f"reader{i}@enterprise.example": KeyPair.generate(
            f"reader{i}@enterprise.example", bits=1024, backend=backend
        )
        for i in range(FIELDS)
    }

    def build_elementwise():
        # Field i readable ONLY by reader i.
        return [
            encrypt_value(
                f"enc-{i}", f"field{i}", f"value {i}".encode(),
                {identity: keypair.public_key},
                backend,
            )
            for i, (identity, keypair) in enumerate(readers.items())
        ]

    elements = benchmark.pedantic(build_elementwise, rounds=5,
                                  warmup_rounds=1)

    # Functional check: reader i decrypts exactly field i.
    identities = list(readers)
    granted, denied = 0, 0
    for i, element in enumerate(elements):
        for j, identity in enumerate(identities):
            try:
                decrypt_value(element, identity,
                              readers[identity].private_key, backend)
                granted += 1
                assert i == j
            except XmlEncryptionError:
                denied += 1
                assert i != j
    assert granted == FIELDS
    assert denied == FIELDS * (FIELDS - 1)

    elementwise_bytes = sum(len(canonicalize(e)) for e in elements)

    # Whole-result alternative: one blob, every reader must get the key
    # to EVERYTHING (the policy violation), readable by all six.
    whole = encrypt_value(
        "enc-all", "whole_result",
        "\n".join(f"value {i}" for i in range(FIELDS)).encode(),
        {identity: keypair.public_key
         for identity, keypair in readers.items()},
        backend,
    )
    whole_bytes = len(canonicalize(whole))

    emit_table(
        "ablation_elementwise",
        "Ablation: element-wise vs whole-result encryption "
        f"({FIELDS} fields, {FIELDS} readers)",
        ["variant", "bytes", "per-field reader sets"],
        [["element-wise", elementwise_bytes, "yes (policy enforced)"],
         ["whole-result", whole_bytes,
          "no (every reader sees all fields)"]],
    )

    # The size overhead of element-wise encryption is bounded: both
    # variants carry FIELDS RSA-wrapped keys; element-wise adds one
    # nonce+tag+EncryptedData wrapper per field.
    assert elementwise_bytes < 2.5 * whole_bytes
