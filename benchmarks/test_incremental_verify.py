"""Incremental cascade verification — per-hop cost with a shared cache.

``test_verify_scaling`` measures the architecture's inherent cost:
every hop re-verifies the whole history, so one *n*-step process pays
O(n²) RSA checks end to end.  This bench demonstrates the opt-in
:class:`~repro.document.vcache.VerificationCache` collapsing that to
O(n): a receiver that already verified the cascade prefix pays exactly
**one** fresh RSA check per hop — the newly appended CER — independent
of chain length, while a cold verifier's per-hop cost keeps growing
linearly.

The counters are asserted *exactly* (they are deterministic), the
wall-clock comparison loosely (hashing still touches every element, so
the timing win is bounded by the RSA share of total cost at these key
sizes).
"""

from __future__ import annotations

import time

from conftest import GENERIC_DESIGNER, emit_table
from repro.core import InMemoryRuntime
from repro.document import build_initial_document, verify_document
from repro.document.vcache import VerificationCache
from repro.workloads.generator import (
    auto_responders,
    chain_definition,
    participant_pool,
)

CHAIN_LENGTHS = [8, 16, 32, 64]


def _hop_documents(world, backend, length):
    """The per-hop document sequence of one chain execution."""
    definition = chain_definition(length, participant_pool(6),
                                  designer=GENERIC_DESIGNER)
    initial = build_initial_document(
        definition, world.keypair(GENERIC_DESIGNER), backend=backend
    )
    runtime = InMemoryRuntime(world.directory, world.keypairs,
                              backend=backend)
    trace = runtime.run(initial, definition, auto_responders(definition),
                        mode="basic")
    return [initial] + [step.document for step in trace.steps]


def test_incremental_verify(benchmark, world, backend):
    hops_by_length = {
        length: _hop_documents(world, backend, length)
        for length in CHAIN_LENGTHS
    }

    rows = []
    for length in CHAIN_LENGTHS:
        documents = hops_by_length[length]

        # Cold sweep: every hop re-verifies the whole history.
        cold_rsa = 0
        cold_start = time.perf_counter()
        cold_reports = [
            verify_document(document, world.directory, backend)
            for document in documents
        ]
        cold_seconds = time.perf_counter() - cold_start
        cold_rsa = sum(r.signatures_verified for r in cold_reports)

        # Warm sweep: one shared cache carried across the hops.
        cache = VerificationCache()
        warm_start = time.perf_counter()
        warm_reports = [
            verify_document(document, world.directory, backend, cache=cache)
            for document in documents
        ]
        warm_seconds = time.perf_counter() - warm_start

        # Equivalence: the cache changes accounting, never the outcome.
        assert warm_reports == cold_reports

        # O(n) instead of O(n²): exactly one fresh RSA check per hop —
        # the newly appended CER — regardless of chain length.
        warm_rsa = sum(r.cache_misses for r in warm_reports)
        assert warm_rsa == length + 1
        assert warm_reports[-1].cache_misses == 1
        assert warm_reports[-1].cache_hits == length
        assert cold_rsa == (length + 1) * (length + 2) // 2

        rows.append([
            length,
            cold_rsa,
            warm_rsa,
            cold_reports[-1].signatures_verified,
            warm_reports[-1].cache_misses,
            f"{cold_seconds * 1000:.1f}",
            f"{warm_seconds * 1000:.1f}",
            f"{cold_seconds / warm_seconds:.2f}x",
        ])

    emit_table(
        "incremental_verify",
        "Per-hop verification: cold vs shared signature cache",
        ["chain length", "cold RSA total", "warm RSA total",
         "cold RSA last hop", "warm RSA last hop",
         "cold sweep (ms)", "warm sweep (ms)", "speedup"],
        rows,
    )

    # Loose wall-clock sanity: the warm sweep must never be slower than
    # the cold one by more than measurement noise (the win itself is
    # reported in the table; its size depends on the RSA/hash ratio).
    longest = hops_by_length[CHAIN_LENGTHS[-1]]
    cold_start = time.perf_counter()
    for document in longest:
        verify_document(document, world.directory, backend)
    cold_seconds = time.perf_counter() - cold_start
    cache = VerificationCache()
    warm_start = time.perf_counter()
    for document in longest:
        verify_document(document, world.directory, backend, cache=cache)
    warm_seconds = time.perf_counter() - warm_start
    assert warm_seconds < cold_seconds * 1.25

    # Steady-state per-hop cost: re-verifying the final document against
    # a fully warmed cache (what the next receiver of a routed copy
    # pays before its own new CER).
    final = longest[-1]
    steady_cache = VerificationCache()
    verify_document(final, world.directory, backend, cache=steady_cache)

    def warm_reverify():
        report = verify_document(final, world.directory, backend,
                                 cache=steady_cache)
        assert report.cache_misses == 0
        return report

    benchmark.pedantic(warm_reverify, rounds=5, warmup_rounds=1)


def test_parallel_cold_verify(world, backend):
    """The thread-pool path: identical report, for the cold audits the
    cache is forbidden for."""
    documents = _hop_documents(world, backend, CHAIN_LENGTHS[-1])
    final = documents[-1]

    serial_start = time.perf_counter()
    serial = verify_document(final, world.directory, backend)
    serial_seconds = time.perf_counter() - serial_start

    pooled_start = time.perf_counter()
    pooled = verify_document(final, world.directory, backend, workers=4)
    pooled_seconds = time.perf_counter() - pooled_start

    assert pooled == serial
    emit_table(
        "parallel_verify",
        "Cold whole-document verification: serial vs 4-thread pool",
        ["signatures", "serial (ms)", "pooled (ms)"],
        [[serial.signatures_verified,
          f"{serial_seconds * 1000:.2f}",
          f"{pooled_seconds * 1000:.2f}"]],
    )
