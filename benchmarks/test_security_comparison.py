"""Claim C4 — the security comparison the paper argues in §1/§2.3.

Runs the full attack matrix against the three architectures on the same
Fig. 9A workload and regenerates the comparison table: engine-based
WfMSs cannot guarantee nonrepudiation (superuser tampering and
repudiation succeed, undetected), while every attack on DRA4WfMS is
detected or rebutted.

Also measures the price of that security: wall-clock of a full process
under DRA4WfMS (basic and advanced) versus the insecure centralized
engine.
"""

from __future__ import annotations

import time

from conftest import emit_table, run_fig9a, run_fig9b
from repro.baselines import CentralizedWfms, DistributedWfms
from repro.cloud.hbase import SimHBase
from repro.cloud.pool import DocumentPool
from repro.crypto import KeyPair
from repro.security import AttackSuite
from repro.workloads.figure9 import figure9_responders


def test_attack_matrix(benchmark, world, fig9a, backend):
    _, trace = run_fig9a(world, fig9a, backend)
    final = trace.final_document

    pool = DocumentPool(SimHBase(region_servers=1))
    pool.register_process(final.process_id)
    pool.store(final)

    centralized = CentralizedWfms(fig9a)
    process_id, _ = centralized.run(figure9_responders(0))
    outsider = KeyPair.generate("eve@evil.example", bits=1024,
                                backend=backend)

    def run_suite():
        return AttackSuite.run(
            dra_document=final,
            directory=world.directory,
            outsider_identity=outsider.identity,
            outsider_private_key=outsider.private_key,
            centralized=centralized,
            centralized_process=process_id,
            repudiated_activity="D",
            distributed_plain=DistributedWfms(fig9a, engines=3,
                                              use_ssl=False),
            distributed_ssl=DistributedWfms(fig9a, engines=3,
                                            use_ssl=True),
            responders=figure9_responders(0),
            pool=pool,
            backend=backend,
        )

    suite = benchmark.pedantic(run_suite, rounds=2, warmup_rounds=1)

    rows = [
        [o.system, o.attack,
         "RESISTED" if o.secure else "COMPROMISED",
         "yes" if o.detected else "no"]
        for o in suite.outcomes
    ]
    emit_table(
        "security_matrix",
        "Claim C4: attack outcomes per architecture",
        ["system", "attack", "outcome", "detected"],
        rows,
    )

    assert suite.dra_all_secure()
    assert suite.baselines_all_vulnerable()


def test_security_overhead(benchmark, world, fig9a, fig9b, backend):
    """What nonrepudiation costs relative to a naive engine."""

    def centralized_run():
        engine = CentralizedWfms(fig9a)
        engine.run(figure9_responders(1))

    start = time.perf_counter()
    centralized_run()
    engine_seconds = time.perf_counter() - start

    start = time.perf_counter()
    _, basic = run_fig9a(world, fig9a, backend)
    basic_seconds = time.perf_counter() - start

    def advanced_run():
        run_fig9b(world, fig9b, backend)

    benchmark.pedantic(advanced_run, rounds=2, warmup_rounds=1)
    advanced_seconds = benchmark.stats["mean"]

    emit_table(
        "security_overhead",
        "Cost of security: full 10-step Fig. 9 process (seconds)",
        ["system", "seconds", "security"],
        [["centralized engine (no crypto)", f"{engine_seconds:.4f}",
          "none: repudiable, tamperable"],
         ["DRA4WfMS basic", f"{basic_seconds:.4f}",
          "auth+conf+integrity+nonrepudiation"],
         ["DRA4WfMS advanced (TFC)", f"{advanced_seconds:.4f}",
          "…plus timestamps & concealed flow"]],
    )
    # Security is not free, but it stays interactive (well under a
    # second per activity even with full-document re-verification).
    assert basic_seconds / 10 < 1.0
    assert advanced_seconds / 10 < 1.0
