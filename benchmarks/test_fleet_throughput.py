"""Fleet fabric throughput — scaling the in-flight instance count.

§3's multi-tenancy claim, measured through the discrete-event fabric:
one shared cloud, fleets of 1/10/100/1000 concurrent instances, open
loop at a fixed arrival rate.  Reports simulated throughput, latency
percentiles, the bottleneck station, and the host cost of driving the
simulation itself (real crypto runs at every hop).

Fleets of 1–100 run the paper's Figure-9B workflow; the 1000-instance
point uses the 3-activity chain so the bench stays inside a sensible
wall-clock budget (the CI smoke and the acceptance run exercise fig9
at scale).
"""

from __future__ import annotations

import time

from conftest import emit_table
from repro.fleet import FleetConfig, OpenLoop, build_fleet, workload_from_spec

#: (fleet size, workload spec, arrival rate / sim-second)
POINTS = [
    (1, "fig9", 2.0),
    (10, "fig9", 4.0),
    (100, "fig9", 6.0),
    (1000, "chain:3", 12.0),
]


def test_fleet_size_sweep(benchmark, backend):
    rows = []

    def sweep():
        rows.clear()
        for instances, spec, rate in POINTS:
            config = FleetConfig(
                arrivals=OpenLoop(instances=instances,
                                  rate_per_second=rate),
                seed=7, audit_every=0,
            )
            fleet = build_fleet(workload_from_spec(spec), config,
                                backend=backend)
            start = time.perf_counter()
            report = fleet.run()
            wall = time.perf_counter() - start
            assert report.instances_completed == instances
            util = report.utilization()
            bottleneck = max(util, key=util.get)
            rows.append([
                instances, spec,
                f"{report.throughput_per_second:.2f}",
                f"{report.latency_p50:.3f}",
                f"{report.latency_p99:.3f}",
                f"{bottleneck} ({util[bottleneck]:.0%})",
                f"{wall:.1f}",
            ])
        return rows

    benchmark.pedantic(sweep, rounds=1, warmup_rounds=0)

    emit_table(
        "fleet_throughput",
        "Fleet fabric: open-loop scaling over one shared cloud",
        ["instances", "workload", "inst/sim-s", "p50 (sim-s)",
         "p99 (sim-s)", "bottleneck", "host wall (s)"],
        rows,
    )
