"""Claim C3 — "the TFC was not the bottleneck" (§4.1).

Two experiments:

1. Per-step comparison on the Fig. 9B trace: the TFC's processing time
   (verify + re-encrypt + sign) against the AEA-side handling of the
   same step.  The paper notes the two are similar in total but "the
   TFC server did not need to make a connection-oriented session with
   the participant", so participant think-time never occupies it.
2. TFC service-rate benchmark: how many intermediate documents per
   second one TFC server finalises, versus the rate at which a single
   participant's AEA can even produce them — the TFC serves many
   participants before saturating.
"""

from __future__ import annotations

import time

from conftest import TFC_IDENTITY, emit_table, run_fig9b
from repro.core import ActivityExecutionAgent, TfcServer
from repro.document import build_initial_document
from repro.workloads.figure9 import DESIGNER, PARTICIPANTS


def test_tfc_vs_aea_per_step(benchmark, world, fig9b, backend):
    _, trace, tfc = benchmark.pedantic(
        lambda: run_fig9b(world, fig9b, backend), rounds=2,
        warmup_rounds=1,
    )
    rows = []
    for step in trace.steps:
        aea_seconds = step.alpha + step.beta  # includes TFC verify share
        rows.append([
            step.label, f"{aea_seconds:.4f}", f"{step.gamma:.4f}",
            f"{step.gamma / aea_seconds:.2f}",
        ])
    emit_table(
        "tfc_per_step",
        "Claim C3: TFC processing vs AEA-side handling per step",
        ["Step", "AEA total (s)", "TFC gamma (s)", "ratio"],
        rows,
    )
    total_gamma = sum(s.gamma for s in trace.steps)
    total_aea = sum(s.alpha + s.beta for s in trace.steps)
    assert total_gamma < 0.75 * total_aea


def test_tfc_service_rate(benchmark, world, fig9b, backend):
    """Finalisations per second on a fresh single-step document."""
    tfc = TfcServer(world.keypair(TFC_IDENTITY), world.directory,
                    backend=backend, keep_copies=False)
    agent = ActivityExecutionAgent(world.keypair(PARTICIPANTS["A"]),
                                   world.directory, backend)

    def make_pending():
        initial = build_initial_document(fig9b, world.keypair(DESIGNER),
                                         backend=backend)
        return agent.execute_activity(
            initial, "A", {"attachment": "form"}, mode="advanced",
            tfc_identity=tfc.identity, tfc_public_key=tfc.public_key,
        ).document

    # Producer rate: how fast one AEA emits intermediate documents.
    produce_start = time.perf_counter()
    pending = [make_pending() for _ in range(8)]
    produce_rate = 8 / (time.perf_counter() - produce_start)

    index = iter(range(10**9))

    def finalise():
        return tfc.process(pending[next(index) % len(pending)])

    benchmark.pedantic(finalise, rounds=16, warmup_rounds=2)
    tfc_rate = 1.0 / benchmark.stats["mean"]

    emit_table(
        "tfc_throughput",
        "Claim C3: TFC service rate vs one participant's production rate",
        ["quantity", "value"],
        [["TFC finalisations/s", f"{tfc_rate:.1f}"],
         ["one AEA's submissions/s", f"{produce_rate:.1f}"],
         ["participants one TFC sustains",
          f"{tfc_rate / produce_rate:.1f}"]],
    )
    # A single TFC keeps up with at least one full-speed participant —
    # and real participants think for minutes, not milliseconds.
    assert tfc_rate > 0.5 * produce_rate
