"""Delta routing: bytes *and host wall clock* for a long instance.

The acceptance claim of the delta-routing design (docs/ROUTING.md): a
50-activity sequential workflow cycling 5 participants moves **at most
15%** of the bytes full routing moves, because every hop after a
participant's first visit ships only the CERs appended since they last
held the document.  Since the chunker memoisation pass, delta mode must
also win on *host* wall clock — chunking is no longer allowed to cost
more than the serialisation it replaces.  Both claims are asserted from
the emitted ``BENCH_delta_routing.json`` payload, so the machine-
readable artifact and the test can never disagree.
"""

from __future__ import annotations

import json
import time

from conftest import emit_bench, emit_table
from repro.fleet import ClosedLoop, FleetConfig, build_fleet, workload_from_spec

SPEC = "chain:50:5"
SEED = 7
ACCEPTANCE_RATIO = 0.15


def _run(delta: bool):
    fleet = build_fleet(
        workload_from_spec(SPEC),
        FleetConfig(arrivals=ClosedLoop(instances=1, concurrency=1),
                    seed=SEED, audit_every=1),
        delta_routing=delta,
    )
    started = time.perf_counter()
    report = fleet.run()
    return report, time.perf_counter() - started


def _wire(report) -> int:
    return report.bytes_to_cloud + report.bytes_from_cloud


def test_delta_moves_under_15_percent_of_full():
    full, full_host = _run(delta=False)
    delta, delta_host = _run(delta=True)

    assert full.instances_completed == delta.instances_completed == 1
    assert full.audit_failures == delta.audit_failures == 0
    assert delta.hops_executed == full.hops_executed

    ratio = _wire(delta) / _wire(full)
    assert ratio <= ACCEPTANCE_RATIO, (
        f"delta routing moved {ratio:.1%} of full-routing bytes "
        f"(acceptance bar: {ACCEPTANCE_RATIO:.0%})"
    )

    rows = [
        [report.routing, _wire(report), report.bytes_to_cloud,
         report.bytes_from_cloud, f"{report.makespan_seconds:.3f}",
         f"{report.throughput_per_second:.3f}",
         f"{report.latency_p50:.3f}", f"{report.latency_p99:.3f}"]
        for report in (full, delta)
    ]
    rows.append(["ratio", f"{ratio:.4f}", "", "", "", "", "", ""])
    emit_table(
        "delta_routing",
        f"Delta vs full document routing — {SPEC}, 1 closed-loop instance",
        ["routing", "wire B", "to cloud", "from cloud", "makespan",
         "inst/sim-s", "p50", "p99"],
        rows,
    )

    def as_dict(report, host_seconds):
        return {
            "routing": report.routing,
            "bytes_on_wire": _wire(report),
            "bytes_to_cloud": report.bytes_to_cloud,
            "bytes_from_cloud": report.bytes_from_cloud,
            "makespan_seconds": report.makespan_seconds,
            "throughput_per_second": report.throughput_per_second,
            "latency_p50": report.latency_p50,
            "latency_p99": report.latency_p99,
            "hops_executed": report.hops_executed,
            "host_seconds": round(host_seconds, 3),
            "chunk_store": report.chunk_store,
        }

    emitted = emit_bench("delta_routing", {
        "workload": SPEC,
        "seed": SEED,
        "acceptance_ratio": ACCEPTANCE_RATIO,
        "measured_ratio": round(ratio, 4),
        "full": as_dict(full, full_host),
        "delta": as_dict(delta, delta_host),
    })

    # Wall-clock regression gate, asserted from the emitted artifact:
    # delta routing must beat full routing on *host* time too, or the
    # chunker memoisation has regressed (it used to lose by ~30%).
    payload = json.loads(emitted)
    assert (payload["delta"]["host_seconds"]
            <= payload["full"]["host_seconds"]), (
        f"delta routing took {payload['delta']['host_seconds']}s host "
        f"time vs {payload['full']['host_seconds']}s for full routing — "
        f"the chunking hot path has regressed"
    )
