"""Table 2 — advanced operational model (TFC server) on Fig. 9B.

Regenerates the paper's Table 2: the same ten activity executions
routed through the TFC server, reporting per step

* α — decrypt + verify time in AEA *and* TFC,
* β — encrypt + sign time in the AEA,
* γ — encrypt + sign time in the TFC,
* #CERs (each step adds an intermediate CER and a TFC CER),
* Σ — document size.
"""

from __future__ import annotations

from conftest import emit_table, run_fig9b

#: Paper Table 2 final row: 20 CERs, 47,406 bytes.
PAPER_FINAL_CERS = 20
PAPER_FINAL_BYTES = 47_406
#: Per completed step (AEA+TFC), the CER count after the TFC finalises.
PAPER_CER_PROGRESSION = [2, 4, 4, 8, 10, 12, 14, 14, 18, 20]


def test_table2(benchmark, world, fig9b, backend):
    initial, trace, tfc = benchmark.pedantic(
        lambda: run_fig9b(world, fig9b, backend),
        rounds=3, warmup_rounds=1,
    )

    # The paper's Table 2 interleaves the intermediate document the AEA
    # sends to the TFC (X_Ai, size only) with the finalised document
    # the TFC forwards (X''_Ai) — reproduce both rows per step.
    rows = [["Initial", 0, "-", "-", "-", initial.size_bytes]]
    for step in trace.steps:
        rows.append([
            step.label.replace("X''", "X_it"), step.num_cers - 1,
            f"{step.alpha:.4f}", f"{step.beta:.4f}", "-",
            step.intermediate_size_bytes,
        ])
        rows.append([
            step.label, step.num_cers,
            "-", "-", f"{step.gamma:.4f}", step.size_bytes,
        ])
    emit_table(
        "table2",
        "Table 2: advanced model via TFC, Fig. 9B (times in seconds)",
        ["Document", "#CERs", "alpha(AEA+TFC)", "beta(AEA)", "gamma(TFC)",
         "Sigma(B)"],
        rows,
    )

    # --- structural agreement with the paper ------------------------------
    assert [s.num_cers for s in trace.steps] == PAPER_CER_PROGRESSION
    assert trace.steps[-1].num_cers == PAPER_FINAL_CERS
    assert 0.5 < trace.final_size / PAPER_FINAL_BYTES < 2.0

    # --- timestamps embedded and monotone ----------------------------------
    stamps = [record.timestamp for record in tfc.records]
    assert len(stamps) == 10 and stamps == sorted(stamps)

    # --- β and γ stay roughly constant while α grows -----------------------
    gammas = sorted(s.gamma for s in trace.steps)
    assert gammas[-2] / gammas[0] < 8.0
    assert trace.steps[-1].alpha > trace.steps[0].alpha

    # --- "the TFC was not the bottleneck" -----------------------------------
    # The TFC never holds a participant session; its per-step work (γ +
    # its share of verification) is below the AEA-side handling.
    total_gamma = sum(s.gamma for s in trace.steps)
    total_alpha = sum(s.alpha for s in trace.steps)
    assert total_gamma < total_alpha

    # --- advanced ≈ 2× basic document size (47,406 / 22,910 in the paper).
    # The direct Table-1-vs-Table-2 ratio assertion lives in
    # test_scaling_claims to avoid re-measuring the basic run here.
    assert trace.final_size > 1.5 * initial.size_bytes
