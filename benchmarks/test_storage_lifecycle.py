"""Bounded hot storage — refcounted GC keeps the pool O(live instances).

The paper's pool accretes every document version forever; §4's scaling
story quietly assumes hot storage does not.  This bench runs a
2000-instance closed-loop churn twice over the same seeded fleet:

* **baseline** (``gc_interval=0``) — the historic behaviour: unique
  chunk bytes grow linearly with every completed instance;
* **lifecycle** (``gc_interval=25``) — completed instances are
  archived, compacted, retired, and their chunks swept, so hot bytes
  plateau at the live working set no matter how many instances churn
  through.

Asserted: the lifecycle peak stays within ``PLATEAU_FACTOR`` of the
live working set (concurrency + one sweep interval of completed-but-
unswept instances, at the baseline's measured per-instance footprint);
the baseline demonstrates the linear growth the sweep removes; and
steady-state throughput with the sweep on is no worse than baseline —
lifecycle maintenance is billed to the pool station, so this is a real
claim, not an accounting trick.
"""

from __future__ import annotations

import os
import time

from conftest import emit_bench, emit_table
from repro.fleet import ClosedLoop, FleetConfig, build_fleet, \
    workload_from_spec

SPEC = os.environ.get("STORAGE_LIFECYCLE_SPEC", "chain:3")
INSTANCES = int(os.environ.get("STORAGE_LIFECYCLE_INSTANCES", "2000"))
CONCURRENCY = 8
GC_INTERVAL = 25
SEED = 7
#: Hot-store peak must stay within this factor of the live working set.
PLATEAU_FACTOR = 1.5
#: The baseline must show ≥ this much growth over the lifecycle peak —
#: otherwise the plateau claim is vacuous at this scale.
MIN_BASELINE_GROWTH = 5.0
#: Deterministic same-seed runs; the margin only absorbs future cost-
#: model tweaks, not noise.
MIN_THROUGHPUT_RATIO = 0.98


def run_churn(backend, gc_interval: int):
    config = FleetConfig(
        arrivals=ClosedLoop(instances=INSTANCES, concurrency=CONCURRENCY),
        seed=SEED,
        audit_every=0,
        gc_interval=gc_interval,
    )
    fleet = build_fleet(workload_from_spec(SPEC), config, backend=backend,
                        delta_routing=True)
    start = time.perf_counter()
    report = fleet.run()
    wall = time.perf_counter() - start
    assert report.instances_completed == INSTANCES
    return report, wall


def test_storage_lifecycle_churn(benchmark, backend):
    results = {}

    def churn():
        results["baseline"] = run_churn(backend, gc_interval=0)
        results["lifecycle"] = run_churn(backend, gc_interval=GC_INTERVAL)
        return results

    benchmark.pedantic(churn, rounds=1, warmup_rounds=0)

    base, base_wall = results["baseline"]
    life, life_wall = results["lifecycle"]
    lifecycle = life.lifecycle

    # Per-instance hot footprint, measured from the run that never
    # deletes anything: what one completed instance leaves behind.
    per_instance = base.chunk_store["unique_bytes"] / INSTANCES
    # Live working set: in-flight instances plus up to one sweep
    # interval of completed-but-not-yet-retired ones.
    working_set = (CONCURRENCY + GC_INTERVAL) * per_instance
    peak = lifecycle["peak_hot_bytes"]

    rows = [
        ["baseline (no GC)", INSTANCES,
         base.chunk_store["unique_bytes"], "-",
         f"{base.throughput_per_second:.2f}", f"{base_wall:.1f}"],
        [f"gc_interval={GC_INTERVAL}", INSTANCES,
         lifecycle["hot_unique_bytes"], peak,
         f"{life.throughput_per_second:.2f}", f"{life_wall:.1f}"],
    ]
    emit_table(
        "storage_lifecycle",
        f"Hot storage under churn: {INSTANCES} x {SPEC} closed-loop "
        f"(concurrency {CONCURRENCY})",
        ["run", "instances", "final hot B", "peak hot B", "inst/sim-s",
         "host wall (s)"],
        rows,
    )
    emit_bench("storage_lifecycle", {
        "workload": SPEC,
        "instances": INSTANCES,
        "concurrency": CONCURRENCY,
        "gc_interval": GC_INTERVAL,
        "seed": SEED,
        "plateau_factor": PLATEAU_FACTOR,
        "min_throughput_ratio": MIN_THROUGHPUT_RATIO,
        "baseline": {
            "unique_bytes": base.chunk_store["unique_bytes"],
            "unique_chunks": base.chunk_store["unique_chunks"],
            "throughput_per_second": base.throughput_per_second,
            "host_wall_seconds": round(base_wall, 2),
        },
        "lifecycle_run": {
            "peak_hot_bytes": peak,
            "final_hot_bytes": lifecycle["hot_unique_bytes"],
            "throughput_per_second": life.throughput_per_second,
            "host_wall_seconds": round(life_wall, 2),
            "instances_retired": lifecycle["instances_retired"],
            "manifests_compacted": lifecycle["manifests_compacted"],
            "gc_chunks_deleted": lifecycle["gc_chunks_deleted"],
            "gc_bytes_reclaimed": lifecycle["gc_bytes_reclaimed"],
            "sweeps": lifecycle["sweeps"],
        },
        "per_instance_bytes": round(per_instance, 1),
        "live_working_set_bytes": round(working_set, 1),
        "peak_over_working_set": round(peak / working_set, 3),
        "baseline_over_peak": round(
            base.chunk_store["unique_bytes"] / peak, 2),
    })

    # Every completed instance left hot storage, and the sweep drained
    # the store completely once the last one retired.
    assert lifecycle["instances_retired"] == INSTANCES
    assert lifecycle["hot_unique_bytes"] == 0

    # The tentpole claim: hot bytes plateau at the live working set
    # while the baseline grows linearly with total churn.
    assert peak <= PLATEAU_FACTOR * working_set, (
        f"hot-store peak {peak} exceeds {PLATEAU_FACTOR}x the live "
        f"working set ({working_set:.0f} B)"
    )
    assert base.chunk_store["unique_bytes"] >= MIN_BASELINE_GROWTH * peak

    # And the plateau is not bought with throughput: lifecycle
    # maintenance competes for the pool station, billed honestly.
    ratio = life.throughput_per_second / base.throughput_per_second
    assert ratio >= MIN_THROUGHPUT_RATIO, (
        f"lifecycle throughput {life.throughput_per_second:.2f}/s fell "
        f"below baseline {base.throughput_per_second:.2f}/s"
    )
