"""Run-time amendment overhead (dynamic flow control, §2 features).

Amendments are signed CERs, so they cost one RSA signature to create,
one to verify, and they re-enter the authorization replay on every
subsequent verification.  This bench measures how a stack of k
delegations affects document size and whole-document verification —
both must stay linear in k, like any other CER.
"""

from __future__ import annotations

import time

from conftest import emit_table
from repro.core import ActivityExecutionAgent
from repro.document import build_initial_document, verify_document
from repro.document.amendments import DelegateActivity
from repro.workloads.figure9 import DESIGNER, PARTICIPANTS

AMENDMENT_COUNTS = [0, 2, 4, 8]
DEPUTY_POOL = [f"deputy{i}@megacorp.example" for i in range(9)]


def test_amendment_stack_cost(benchmark, world, fig9a, backend):
    for identity in DEPUTY_POOL:
        if identity not in world.directory:
            world.add_participant(identity)

    documents = {}

    def build_stacks():
        base = build_initial_document(fig9a, world.keypair(DESIGNER),
                                      backend=backend)
        agent = ActivityExecutionAgent(world.keypair(PARTICIPANTS["A"]),
                                       world.directory, backend)
        document = agent.execute_activity(
            base, "A", {"attachment": "x"}).document
        documents[0] = document
        # Chain of delegations of D: approver → deputy0 → deputy1 → …
        current_holder = PARTICIPANTS["D"]
        for index in range(max(AMENDMENT_COUNTS)):
            holder_agent = ActivityExecutionAgent(
                world.keypair(current_holder), world.directory, backend)
            next_holder = DEPUTY_POOL[index]
            document = holder_agent.amend(
                document, DelegateActivity("D", next_holder))
            current_holder = next_holder
            if index + 1 in AMENDMENT_COUNTS:
                documents[index + 1] = document
        return documents

    benchmark.pedantic(build_stacks, rounds=1, warmup_rounds=1)

    rows = []
    sizes, verifies = [], []
    for count in AMENDMENT_COUNTS:
        document = documents[count]
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            verify_document(document, world.directory, backend)
            best = min(best, time.perf_counter() - start)
        sizes.append(document.size_bytes)
        verifies.append(best)
        rows.append([count, document.size_bytes,
                     f"{best * 1000:.2f}"])
    emit_table(
        "amendment_overhead",
        "Delegation-chain depth vs document size and verification",
        ["amendments", "Sigma(B)", "verify (ms)"],
        rows,
    )

    # Size grows linearly: each delegation adds ~one CER's worth.
    deltas = [b - a for a, b in zip(sizes, sizes[1:])]
    assert max(deltas) < 2.5 * min(deltas)
    # Verification stays linear-ish (8 amendments ≪ 8× slower than 0).
    assert verifies[-1] < 8 * (verifies[0] + 1e-4)
