"""Claim C5 — the document pool scales (§4.2 and the conclusion).

The paper stores DRA4WfMS documents in HBase over HDFS and claims the
pool supports querying, storing, monitoring and statistical analyses as
the number of documents grows (their own measurement of this was left
as future work — "we are working on extending the number of data
nodes …").  We sweep the pool to thousands of documents and measure:

* per-document store and retrieve latency (real compute time),
* TO-DO search latency,
* region splits and load distribution across region servers,
* a MapReduce statistics job over the whole pool.
"""

from __future__ import annotations

import time

from conftest import emit_table
from repro.cloud.hbase import SimHBase
from repro.cloud.mapreduce import MapReduceEngine
from repro.cloud.pool import DOC_TABLE, DocumentPool
from repro.document import build_initial_document
from repro.workloads.figure9 import DESIGNER

POOL_SIZES = [100, 500, 2000]


def fill_pool(pool, template_bytes, count, start=0):
    from repro.document import Dra4wfmsDocument

    for i in range(start, start + count):
        document = Dra4wfmsDocument.from_bytes(template_bytes)
        document.header.set("ProcessId", f"proc-{i:06d}")
        pool.register_process(document.process_id)
        pool.store(document)
        pool.add_todo(f"user{i % 50}@enterprise.example",
                      document.process_id, "A")


def test_pool_scaling(benchmark, world, fig9a, backend):
    template = build_initial_document(fig9a, world.keypair(DESIGNER),
                                      backend=backend).to_bytes()

    rows = []
    measurements = {}

    def sweep():
        for total in POOL_SIZES:
            hbase = SimHBase(region_servers=4, split_threshold_rows=128)
            pool = DocumentPool(hbase)
            fill_pool(pool, template, total)

            start = time.perf_counter()
            for i in range(0, total, max(total // 50, 1)):
                pool.latest(f"proc-{i:06d}")
            gets = total // max(total // 50, 1)
            get_seconds = (time.perf_counter() - start) / gets

            start = time.perf_counter()
            pool.todo_for("user7@enterprise.example")
            todo_seconds = time.perf_counter() - start

            engine = MapReduceEngine(hbase)
            _, stats = engine.run(
                DOC_TABLE,
                lambda key, row: [("docs", 1)],
                lambda key, values: sum(values),
            )
            measurements[total] = (
                get_seconds, todo_seconds,
                hbase.region_count(DOC_TABLE),
                stats.simulated_makespan_seconds,
                {s.server_id: s.load for s in hbase.servers.values()},
            )
        return measurements

    benchmark.pedantic(sweep, rounds=1, warmup_rounds=0)

    for total in POOL_SIZES:
        get_s, todo_s, regions, makespan, loads = measurements[total]
        rows.append([
            total, f"{get_s * 1000:.3f}", f"{todo_s * 1000:.3f}",
            regions, f"{makespan:.4f}",
        ])
    emit_table(
        "pool_scaling",
        "Claim C5: document pool scaling (real ms per op)",
        ["documents", "get (ms)", "todo search (ms)", "regions",
         "MapReduce makespan (s)"],
        rows,
    )

    # Random access stays flat-ish while the pool grows 20×: a get must
    # not degrade linearly with pool size (region-sharded lookup).
    small_get = measurements[POOL_SIZES[0]][0]
    large_get = measurements[POOL_SIZES[-1]][0]
    growth = POOL_SIZES[-1] / POOL_SIZES[0]
    assert large_get < small_get * growth / 2

    # The table actually split into regions and spread over servers.
    assert measurements[POOL_SIZES[-1]][2] >= 4
    loads = measurements[POOL_SIZES[-1]][4]
    assert sum(1 for load in loads.values() if load > 0) >= 2


def test_durability_under_datanode_failure(benchmark, world, fig9a,
                                           backend):
    """§1: the pool must be "durable and resilient to any failures"."""
    template = build_initial_document(fig9a, world.keypair(DESIGNER),
                                      backend=backend).to_bytes()

    def exercise():
        hbase = SimHBase(region_servers=2, split_threshold_rows=64)
        pool = DocumentPool(hbase)
        fill_pool(pool, template, 200)
        hbase.hdfs.kill_node("dn0")
        # A region server dies too: regions recover from store files +
        # WAL replay on the survivor.
        hbase.kill_server("rs0")
        # All documents remain readable and re-replication healed.
        for i in (0, 99, 199):
            pool.latest(f"proc-{i:06d}")
        return hbase.hdfs.under_replicated_blocks()

    under_replicated = benchmark.pedantic(exercise, rounds=1,
                                          warmup_rounds=0)
    assert under_replicated == 0
