"""Sharded portal tier: throughput scaling across portal counts.

The paper's §3 scalability claim is that the cloud tier scales by
adding portal servers in front of the shared pool.  This bench runs the
same seeded open-loop (Poisson) workload against 1, 2, 4 and 8 portals
with consistent-hash (``ring``) placement — each portal its own
single-worker station — and records simulated throughput, per-portal
utilization, placement skew and region-split counts per tier size in
``BENCH_portal_scaling.json``.

What the assertions pin:

* **throughput scaling** — ≥ 1.7× going 1 → 2 portals and ≥ 3× going
  1 → 4 at a portal-saturating arrival rate (the front door is the
  bottleneck; doubling it should nearly double completions/sim-second).
  The 8-portal point is recorded *unasserted*: with the arrival rate
  and instance count fixed, the tier stops being the bottleneck and
  the knee (arrival-limited, skew-limited) is the honest result.
* **determinism** — the same seed must produce a byte-identical
  report, portals and placement included.
* **auto-split under load** — the split-row threshold is set low
  enough that the document table splits during the run, so the
  ``storage`` section carries non-zero split counts.

Scale knobs (env): ``PORTAL_SCALING_SPEC`` (default ``chain:4:2``),
``PORTAL_SCALING_INSTANCES`` (default 100), ``PORTAL_SCALING_RATE``
(default 40 arrivals/sim-second).
"""

from __future__ import annotations

import os

from conftest import emit_bench, emit_table
from repro.fleet import FleetConfig, OpenLoop, build_fleet, workload_from_spec

SPEC = os.environ.get("PORTAL_SCALING_SPEC", "chain:4:2")
INSTANCES = int(os.environ.get("PORTAL_SCALING_INSTANCES", "100"))
RATE = float(os.environ.get("PORTAL_SCALING_RATE", "40"))
SEED = 7
PORTAL_COUNTS = (1, 2, 4, 8)
#: Document-table rows before a region splits — low enough that the
#: run demonstrably exercises auto-split under load.
SPLIT_ROWS = 64
MIN_SPEEDUP_AT_2 = 1.7
MIN_SPEEDUP_AT_4 = 3.0


def run_tier(portals: int):
    workload = workload_from_spec(SPEC)
    config = FleetConfig(
        arrivals=OpenLoop(instances=INSTANCES, rate_per_second=RATE),
        seed=SEED,
        audit_every=20,
        # Two TFC workers keep the notary off the critical path so the
        # sweep measures the portal tier, not the TFC.
        tfc_workers=2,
    )
    fleet = build_fleet(workload, config, portals=portals,
                        placement="ring",
                        split_threshold_rows=SPLIT_ROWS)
    return fleet.run()


def test_portal_scaling():
    reports = {portals: run_tier(portals) for portals in PORTAL_COUNTS}

    for portals, report in reports.items():
        assert report.instances_completed == INSTANCES
        assert report.audit_failures == 0
        assert report.placement["scheme"] == "ring"
        # Ring mode reports one station per portal, nothing pooled.
        assert len(report.portal_utilization()) == portals
        assert sum(report.placement["portals"].values()) == INSTANCES

    # Same seed ⇒ byte-identical report, placement sections included.
    rerun = run_tier(2)
    assert rerun.to_json() == reports[2].to_json()

    # Auto-split fired under load and is visible in the report.
    assert reports[1].storage["region_splits"] > 0

    base = reports[1].throughput_per_second
    rows = []
    by_portals = {}
    for portals, report in sorted(reports.items()):
        speedup = report.throughput_per_second / base if base else 0.0
        util = report.portal_utilization()
        rows.append([
            portals,
            f"{report.throughput_per_second:.3f}",
            f"{speedup:.2f}x",
            f"{report.placement['skew']:.3f}",
            report.storage["region_splits"],
            f"{min(util.values()):.2f}-{max(util.values()):.2f}",
        ])
        by_portals[str(portals)] = {
            "throughput_per_sim_second": report.throughput_per_second,
            "speedup_vs_1_portal": round(speedup, 4),
            "makespan_seconds": report.makespan_seconds,
            "latency_p95": report.latency_p95,
            "portal_utilization": util,
            "placement": report.placement,
            "storage": report.storage,
        }
    emit_table(
        "portal_scaling",
        f"Sharded portal tier — {SPEC}, {INSTANCES} instances, "
        f"Poisson rate {RATE}/sim-s, ring placement",
        ["portals", "inst/sim-s", "speedup", "skew", "splits",
         "portal util"],
        rows,
    )
    emit_bench("portal_scaling", {
        "workload": SPEC,
        "instances": INSTANCES,
        "rate_per_second": RATE,
        "seed": SEED,
        "placement": "ring",
        "split_threshold_rows": SPLIT_ROWS,
        "by_portals": by_portals,
        "min_speedup_at_2_portals": MIN_SPEEDUP_AT_2,
        "min_speedup_at_4_portals": MIN_SPEEDUP_AT_4,
    })

    assert by_portals["2"]["speedup_vs_1_portal"] >= MIN_SPEEDUP_AT_2
    assert by_portals["4"]["speedup_vs_1_portal"] >= MIN_SPEEDUP_AT_4
