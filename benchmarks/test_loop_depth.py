"""Loop-depth sweep — Fig. 9A's loop pattern at depth.

The paper's experiment loops the five-activity process exactly once.
The loop is the pattern that makes documents grow without bound, so we
sweep it: the Fig. 9A process driven around the loop k = 1…6 times,
measuring the final document size and the last approval's verification
cost.  Both must stay linear in the number of completed executions —
iteration-indexed CERs (``CER(A^k)``, §2.1's loop extension) must not
introduce any superlinear cost.
"""

from __future__ import annotations

import numpy as np

from conftest import emit_table
from repro.core import InMemoryRuntime
from repro.document import build_initial_document
from repro.workloads.figure9 import DESIGNER, figure9_responders

LOOPS = [1, 2, 4, 6]


def test_loop_depth_scaling(benchmark, world, fig9a, backend):
    traces = {}

    def sweep():
        for loops in LOOPS:
            initial = build_initial_document(
                fig9a, world.keypair(DESIGNER), backend=backend
            )
            runtime = InMemoryRuntime(world.directory, world.keypairs,
                                      backend=backend)
            traces[loops] = runtime.run(
                initial, fig9a, figure9_responders(loops), mode="basic"
            )
        return traces

    benchmark.pedantic(sweep, rounds=1, warmup_rounds=1)

    rows = []
    executions, sizes, alphas = [], [], []
    for loops in LOOPS:
        trace = traces[loops]
        last = trace.steps[-1]
        executions.append(len(trace.steps))
        sizes.append(trace.final_size)
        alphas.append(last.alpha)
        rows.append([
            loops, len(trace.steps), last.signatures_verified,
            f"{last.alpha:.4f}", trace.final_size,
        ])
    emit_table(
        "loop_depth",
        "Fig. 9A around the loop k times (final approval step)",
        ["loop count", "executions", "#sigs", "alpha(s)", "Sigma(B)"],
        rows,
    )

    # Iteration semantics: the deepest run holds one CER per execution.
    deepest = traces[LOOPS[-1]].final_document
    for activity_id in ("A", "B1", "B2", "C", "D"):
        assert deepest.execution_count(activity_id) == LOOPS[-1] + 1

    # Size stays linear in executions (< 5% straight-line residual).
    n = np.array(executions, dtype=float)
    sigma = np.array(sizes, dtype=float)
    fit = np.polyfit(n, sigma, 1)
    residual = np.linalg.norm(sigma - np.polyval(fit, n)) \
        / np.linalg.norm(sigma)
    assert residual < 0.05

    # α grows with history but sublinearly vs a quadratic blow-up:
    # 3.5× more executions may not cost 12× more verification.
    assert alphas[-1] < 12 * alphas[0]
