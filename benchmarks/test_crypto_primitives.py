"""Crypto substrate microbenchmarks: pure vs fast backend.

Not a paper table, but the evidence for a reproduction decision
documented in DESIGN.md: the from-scratch primitives are the reference
implementation (cross-checked against OpenSSL by the test suite), while
the fast backend keeps the end-to-end benches within the same order of
magnitude as the paper's Java testbed.
"""

from __future__ import annotations

import pytest

from conftest import emit_table
from repro.crypto.backend import PureBackend
from repro.crypto.fast import FastBackend
from repro.crypto.pure.drbg import HmacDrbg
from repro.crypto.pure.rsa import generate_keypair

MESSAGE = b"x" * 4096


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(1024, HmacDrbg(b"bench-key"))


@pytest.fixture(scope="module")
def pure():
    return PureBackend(seed=b"bench")


@pytest.fixture(scope="module")
def fast():
    return FastBackend()


def test_pure_sign(benchmark, pure, keypair):
    benchmark(pure.sign, keypair, MESSAGE)


def test_fast_sign(benchmark, fast, keypair):
    fast.sign(keypair, MESSAGE)  # warm the key-conversion cache
    benchmark(fast.sign, keypair, MESSAGE)


def test_pure_verify(benchmark, pure, keypair):
    signature = pure.sign(keypair, MESSAGE)
    benchmark(pure.verify, keypair.public_key, MESSAGE, signature)


def test_fast_verify(benchmark, fast, keypair):
    signature = fast.sign(keypair, MESSAGE)
    benchmark(fast.verify, keypair.public_key, MESSAGE, signature)


def test_pure_seal(benchmark, pure):
    benchmark(pure.seal, b"k" * 16, MESSAGE)


def test_fast_seal(benchmark, fast):
    benchmark(fast.seal, b"k" * 16, MESSAGE)


def test_backend_speed_summary(benchmark, pure, fast, keypair):
    """One table comparing the two backends on the core operations."""
    import time

    benchmark.pedantic(lambda: pure.digest(MESSAGE), rounds=3,
                       warmup_rounds=1)

    def clock(fn, *args, repeat=5):
        best = float("inf")
        for _ in range(repeat):
            start = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - start)
        return best

    signature = fast.sign(keypair, MESSAGE)
    rows = []
    for name, operation, args in [
        ("sign (RSA-1024)", "sign", (keypair, MESSAGE)),
        ("verify", "verify", (keypair.public_key, MESSAGE, signature)),
        ("seal 4 KiB", "seal", (b"k" * 16, MESSAGE)),
        ("digest 4 KiB", "digest", (MESSAGE,)),
    ]:
        pure_seconds = clock(getattr(pure, operation), *args)
        fast_seconds = clock(getattr(fast, operation), *args)
        rows.append([
            name, f"{pure_seconds * 1000:.3f}",
            f"{fast_seconds * 1000:.3f}",
            f"{pure_seconds / fast_seconds:.0f}x",
        ])
    emit_table(
        "crypto_backends",
        "Crypto backends: pure (from scratch) vs fast (OpenSSL), ms",
        ["operation", "pure (ms)", "fast (ms)", "slowdown"],
        rows,
    )
    # The pure backend is expected to be slower, but must stay usable
    # (every operation under a second).
    assert all(float(row[1]) < 1000 for row in rows)
