"""Verification cost scaling — the operational limit of document routing.

Not a paper table, but the reproduction's own measurement of the
architecture's inherent cost: every AEA re-verifies the *whole* history
on receipt, so per-step verification grows with process length.  This
bench sweeps chain workflows and checks the growth stays near-linear
(it would be quadratic without the one-pass Algorithm 1 closure in
``repro.document.nonrepudiation.all_scopes`` — see the profile notes
there).
"""

from __future__ import annotations

import time

import numpy as np

from conftest import GENERIC_DESIGNER, emit_table
from repro.core import InMemoryRuntime
from repro.document import build_initial_document, verify_document
from repro.workloads.generator import (
    auto_responders,
    chain_definition,
    participant_pool,
)

CHAIN_LENGTHS = [8, 16, 32, 64]


def test_verify_cost_scaling(benchmark, world, backend):
    finals = {}
    for length in CHAIN_LENGTHS:
        definition = chain_definition(length, participant_pool(6),
                                      designer=GENERIC_DESIGNER)
        initial = build_initial_document(
            definition, world.keypair(GENERIC_DESIGNER), backend=backend
        )
        runtime = InMemoryRuntime(world.directory, world.keypairs,
                                  backend=backend)
        finals[length] = runtime.run(
            initial, definition, auto_responders(definition), mode="basic"
        ).final_document

    def verify_largest():
        verify_document(finals[CHAIN_LENGTHS[-1]], world.directory,
                        backend)

    benchmark.pedantic(verify_largest, rounds=5, warmup_rounds=1)

    rows = []
    costs = []
    for length in CHAIN_LENGTHS:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            verify_document(finals[length], world.directory, backend)
            best = min(best, time.perf_counter() - start)
        costs.append(best)
        rows.append([
            length, finals[length].size_bytes, f"{best * 1000:.2f}",
            f"{best * 1000 / length:.3f}",
        ])
    emit_table(
        "verify_scaling",
        "Whole-document verification cost vs process length",
        ["chain length", "doc bytes", "verify (ms)", "ms per CER"],
        rows,
    )

    # Near-linear: fitting cost vs n, the quadratic coefficient's
    # contribution at n=64 stays below the linear term's.
    ns = np.array(CHAIN_LENGTHS, dtype=float)
    cost = np.array(costs)
    quad = np.polyfit(ns, cost, 2)
    linear_term = abs(quad[1]) * ns[-1]
    quadratic_term = abs(quad[0]) * ns[-1] ** 2
    assert quadratic_term < 2.0 * linear_term

    # And an 8× longer chain costs well under 8²× more.
    assert costs[-1] < 20 * costs[0]
