"""Canonicalization micro-benchmarks: escaping and the canonical memo.

Two hot-path optimisations behind delta routing get their numbers here:

* **single-pass escaping** — ``str.translate`` with a precomputed table
  versus the naive chain of ``str.replace`` calls (one pass per
  entity); and
* **canonical-bytes memoization** — re-serializing a grown document
  when every untouched CER subtree is served from the memo versus
  serializing from scratch.

Both are correctness-equivalent by test (tests/xmlsec/test_canonical.py)
— this file only measures.
"""

from __future__ import annotations

import time

from conftest import emit_table, run_fig9a
from repro.xmlsec.canonical import CanonicalMemo, canonicalize

ROUNDS = 200


def _chained_replace(text: str) -> str:
    """The replaced implementation, kept as the benchmark baseline
    (same validity scan as the real path, then one pass per entity)."""
    from repro.xmlsec.canonical import _check_chars

    _check_chars(text, "text content")
    return (text.replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;").replace("\r", "&#13;"))


def _time(fn, rounds=ROUNDS) -> float:
    started = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - started) / rounds


def test_escaping_single_pass(world, fig9a, backend):
    from repro.xmlsec.canonical import _escape_text

    _, trace = run_fig9a(world, fig9a, backend)
    # Escape every text payload of a real final document — dominated by
    # base64 signature/ciphertext blobs that contain nothing to escape,
    # exactly the common case the table-driven path is fast on.
    texts = [node.text for node in trace.final_document.root.iter()
             if node.text]
    assert [_escape_text(t) for t in texts] == \
        [_chained_replace(t) for t in texts]

    chained = _time(lambda: [_chained_replace(t) for t in texts])
    single = _time(lambda: [_escape_text(t) for t in texts])
    emit_table(
        "canonical_escaping",
        "Text escaping over one final Fig. 9A document",
        ["variant", "µs/document", "speedup"],
        [
            ["chained str.replace", f"{chained * 1e6:.1f}", "1.00x"],
            ["guarded single pass", f"{single * 1e6:.1f}",
             f"{chained / single:.2f}x"],
        ],
    )


def test_memoized_canonicalization(world, fig9a, backend):
    _, trace = run_fig9a(world, fig9a, backend)
    root = trace.final_document.root

    cold = _time(lambda: canonicalize(root))

    memo = CanonicalMemo()
    canonicalize(root, memo)  # warm the memo once
    warm = _time(lambda: canonicalize(root, memo))

    assert canonicalize(root, memo) == canonicalize(root)
    emit_table(
        "canonical_memo",
        "Canonical serialization of the final Fig. 9A document",
        ["variant", "µs/serialization", "speedup"],
        [
            ["cold (no memo)", f"{cold * 1e6:.1f}", "1.00x"],
            ["warm memo", f"{warm * 1e6:.1f}", f"{cold / warm:.2f}x"],
        ],
    )
