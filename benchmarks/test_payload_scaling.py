"""Payload scaling — large attachments in execution results.

Fig. 9A's loop condition is "Attachment is insufficient": the workloads
carry real attachments.  This bench sweeps the attachment size from
1 KiB to 256 KiB and measures how β (encrypt+sign) and the document
size respond.  Expectation: Σ grows ≈ 4/3 × payload (Base64) plus a
constant envelope, β grows with the symmetric work but stays far below
the RSA floor until payloads reach hundreds of kilobytes — element-wise
*hybrid* encryption is what makes large payloads affordable (pure RSA
could not carry them at all).
"""

from __future__ import annotations

from conftest import emit_table, run_fig9a
from repro.core import ActivityExecutionAgent
from repro.document import build_initial_document
from repro.workloads.figure9 import DESIGNER, PARTICIPANTS

SIZES = [1 << 10, 16 << 10, 64 << 10, 256 << 10]


def test_attachment_size_sweep(benchmark, world, fig9a, backend):
    agent = ActivityExecutionAgent(world.keypair(PARTICIPANTS["A"]),
                                   world.directory, backend)
    measurements = {}

    def sweep():
        for size in SIZES:
            initial = build_initial_document(
                fig9a, world.keypair(DESIGNER), backend=backend
            )
            payload = "A" * size
            best_beta, doc = None, None
            for _ in range(3):
                result = agent.execute_activity(
                    initial.clone(), "A", {"attachment": payload}
                )
                beta = result.timings.sign_seconds
                if best_beta is None or beta < best_beta:
                    best_beta, doc = beta, result.document
            measurements[size] = (best_beta, doc.size_bytes,
                                  initial.size_bytes)
        return measurements

    benchmark.pedantic(sweep, rounds=1, warmup_rounds=1)

    rows = []
    for size in SIZES:
        beta, doc_bytes, base = measurements[size]
        rows.append([
            f"{size >> 10} KiB", f"{beta * 1000:.2f}",
            doc_bytes, f"{(doc_bytes - base) / size:.2f}",
        ])
    emit_table(
        "payload_scaling",
        "Attachment size vs encrypt+sign time and document overhead",
        ["attachment", "beta (ms)", "doc bytes", "bytes per payload byte"],
        rows,
    )

    # Document overhead per payload byte ≈ Base64's 4/3 (plus envelope).
    for size in SIZES[1:]:
        beta, doc_bytes, base = measurements[size]
        ratio = (doc_bytes - base) / size
        assert 1.2 < ratio < 1.8

    # Hybrid encryption: 256× more payload costs far less than 256× the
    # signing time (the RSA floor dominates small payloads).
    small_beta = measurements[SIZES[0]][0]
    large_beta = measurements[SIZES[-1]][0]
    assert large_beta < 64 * small_beta
